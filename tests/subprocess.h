/**
 * @file
 * Subprocess harness for end-to-end CLI and daemon tests.
 *
 * Replaces the old popen("cmd 2>&1") helper, which had two failure
 * modes this header exists to close:
 *
 *  - stdout and stderr were merged, so a test could not tell a clean
 *    report from one drowning in warnings (and could not assert that
 *    errors go to stderr, which the CLI contract requires);
 *  - there was no timeout, so a hung child wedged the whole ctest run
 *    instead of failing one test.
 *
 * Two entry points:
 *
 *  - runCommand(): one-shot — spawn, feed optional stdin, wait with a
 *    deadline, return {exitCode, timedOut, out, err}. Used by
 *    cli_test.cc for every qaicc invocation.
 *  - Subprocess: interactive — start a long-running child (the qaiccd
 *    daemon), write request lines, read reply lines with per-read
 *    deadlines, then finish() with a drain deadline. A child that
 *    outlives its deadline is SIGKILLed and reported as timedOut, so a
 *    wedged daemon is a red test, never a wedged CI job.
 *
 * Implementation notes: fork + /bin/sh -c + dup2'd pipes; all parent
 * reads go through poll() with the remaining deadline, and stderr is
 * drained opportunistically during stdout reads so a chatty child can
 * never deadlock on a full stderr pipe.
 */
#ifndef QAIC_TESTS_SUBPROCESS_H
#define QAIC_TESTS_SUBPROCESS_H

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

namespace qaic::testing {

struct SubprocessResult
{
    int exitCode = -1;
    bool timedOut = false;
    std::string out;
    std::string err;
};

class Subprocess
{
  public:
    Subprocess() = default;
    ~Subprocess() { kill(); }

    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;

    /** Spawns `/bin/sh -c command` with piped stdin/stdout/stderr. */
    bool start(const std::string &command)
    {
        int in_pipe[2], out_pipe[2], err_pipe[2];
        if (pipe(in_pipe) != 0)
            return false;
        if (pipe(out_pipe) != 0) {
            ::close(in_pipe[0]), ::close(in_pipe[1]);
            return false;
        }
        if (pipe(err_pipe) != 0) {
            ::close(in_pipe[0]), ::close(in_pipe[1]);
            ::close(out_pipe[0]), ::close(out_pipe[1]);
            return false;
        }
        pid_ = fork();
        if (pid_ < 0)
            return false;
        if (pid_ == 0) {
            dup2(in_pipe[0], STDIN_FILENO);
            dup2(out_pipe[1], STDOUT_FILENO);
            dup2(err_pipe[1], STDERR_FILENO);
            ::close(in_pipe[0]), ::close(in_pipe[1]);
            ::close(out_pipe[0]), ::close(out_pipe[1]);
            ::close(err_pipe[0]), ::close(err_pipe[1]);
            execl("/bin/sh", "sh", "-c", command.c_str(),
                  static_cast<char *>(nullptr));
            _exit(127);
        }
        ::close(in_pipe[0]);
        ::close(out_pipe[1]);
        ::close(err_pipe[1]);
        stdin_ = in_pipe[1];
        stdout_ = out_pipe[0];
        stderr_ = err_pipe[0];
        // Non-blocking reads: every read goes through poll() with the
        // caller's deadline instead of hanging on a silent child.
        fcntl(stdout_, F_SETFL, O_NONBLOCK);
        fcntl(stderr_, F_SETFL, O_NONBLOCK);
        return true;
    }

    bool running() const { return pid_ > 0; }

    /** Writes @p line plus a newline to the child's stdin. */
    bool writeLine(const std::string &line)
    {
        if (stdin_ < 0)
            return false;
        std::string frame = line + "\n";
        std::size_t off = 0;
        while (off < frame.size()) {
            ssize_t n =
                write(stdin_, frame.data() + off, frame.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    void closeStdin()
    {
        if (stdin_ >= 0) {
            ::close(stdin_);
            stdin_ = -1;
        }
    }

    /**
     * Reads one newline-terminated line from the child's stdout,
     * waiting up to @p timeout_ms. Returns false on deadline or EOF
     * with no complete line (partial bytes stay buffered). stderr is
     * drained into errText() as a side effect.
     */
    bool readLine(std::string *line, int timeout_ms)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        for (;;) {
            auto newline = outBuffer_.find('\n');
            if (newline != std::string::npos) {
                *line = outBuffer_.substr(0, newline);
                outBuffer_.erase(0, newline + 1);
                return true;
            }
            int remaining_ms = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count());
            if (remaining_ms <= 0)
                return false;
            if (!pump(remaining_ms))
                return false; // EOF (or error) before a full line
        }
    }

    /** Everything the child has written to stderr so far. */
    const std::string &errText() const { return errBuffer_; }

    /**
     * Closes stdin, drains both pipes and reaps the child, allowing
     * @p timeout_ms overall. On deadline the child is SIGKILLed and
     * the result is marked timedOut.
     */
    SubprocessResult finish(int timeout_ms)
    {
        SubprocessResult result;
        closeStdin();
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        // Drain until EOF on both pipes or deadline.
        while (stdout_ >= 0 || stderr_ >= 0) {
            int remaining_ms = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count());
            if (remaining_ms <= 0 || !pump(remaining_ms))
                break;
        }
        // Reap with the remaining deadline.
        while (pid_ > 0) {
            int status = 0;
            pid_t reaped = waitpid(pid_, &status, WNOHANG);
            if (reaped == pid_) {
                result.exitCode =
                    WIFEXITED(status) ? WEXITSTATUS(status) : -1;
                pid_ = -1;
                break;
            }
            if (std::chrono::steady_clock::now() >= deadline) {
                result.timedOut = true;
                kill();
                break;
            }
            usleep(2000);
        }
        result.out = std::move(outBuffer_);
        result.err = std::move(errBuffer_);
        outBuffer_.clear();
        errBuffer_.clear();
        closeFds();
        return result;
    }

    /** SIGKILLs and reaps the child; safe to call repeatedly. */
    void kill()
    {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            int status = 0;
            waitpid(pid_, &status, 0);
            pid_ = -1;
        }
        closeFds();
    }

  private:
    /**
     * Waits up to @p timeout_ms for bytes on either pipe and buffers
     * them. Returns false once both pipes hit EOF (or on poll error)
     * with nothing newly read.
     */
    bool pump(int timeout_ms)
    {
        struct pollfd fds[2];
        int nfds = 0;
        int out_slot = -1, err_slot = -1;
        if (stdout_ >= 0) {
            out_slot = nfds;
            fds[nfds++] = {stdout_, POLLIN, 0};
        }
        if (stderr_ >= 0) {
            err_slot = nfds;
            fds[nfds++] = {stderr_, POLLIN, 0};
        }
        if (nfds == 0)
            return false;
        int ready = poll(fds, static_cast<nfds_t>(nfds), timeout_ms);
        if (ready <= 0)
            return ready == 0; // timeout keeps the caller's loop alive
        bool progressed = false;
        if (out_slot >= 0 &&
            (fds[out_slot].revents & (POLLIN | POLLHUP)))
            progressed |= drain(&stdout_, &outBuffer_);
        if (err_slot >= 0 &&
            (fds[err_slot].revents & (POLLIN | POLLHUP)))
            progressed |= drain(&stderr_, &errBuffer_);
        return progressed || stdout_ >= 0 || stderr_ >= 0;
    }

    /** Reads what is available; closes and clears @p fd on EOF. */
    static bool drain(int *fd, std::string *buffer)
    {
        char chunk[4096];
        bool any = false;
        for (;;) {
            ssize_t n = read(*fd, chunk, sizeof(chunk));
            if (n > 0) {
                buffer->append(chunk, static_cast<std::size_t>(n));
                any = true;
                continue;
            }
            if (n == 0) {
                ::close(*fd);
                *fd = -1;
            } else if (errno == EINTR) {
                continue;
            }
            // n < 0 with EAGAIN: drained everything currently there.
            return any;
        }
    }

    void closeFds()
    {
        for (int *fd : {&stdin_, &stdout_, &stderr_}) {
            if (*fd >= 0) {
                ::close(*fd);
                *fd = -1;
            }
        }
    }

    pid_t pid_ = -1;
    int stdin_ = -1;
    int stdout_ = -1;
    int stderr_ = -1;
    std::string outBuffer_;
    std::string errBuffer_;
};

/**
 * One-shot run of `/bin/sh -c command`: feeds @p stdin_data (then EOF),
 * captures stdout and stderr separately, and enforces @p timeout_ms
 * end to end. exitCode is -1 when the child died to a signal or the
 * deadline (check timedOut to tell which).
 */
inline SubprocessResult
runCommand(const std::string &command, int timeout_ms,
           const std::string &stdin_data = std::string())
{
    Subprocess child;
    if (!child.start(command))
        return SubprocessResult{};
    if (!stdin_data.empty()) {
        // A child that exits without reading (usage errors) raises
        // SIGPIPE here; ignore it for the write's duration.
        void (*prev)(int) = signal(SIGPIPE, SIG_IGN);
        std::size_t start = 0;
        while (start < stdin_data.size()) {
            std::size_t end = stdin_data.find('\n', start);
            if (end == std::string::npos) {
                child.writeLine(stdin_data.substr(start));
                break;
            }
            child.writeLine(stdin_data.substr(start, end - start));
            start = end + 1;
        }
        signal(SIGPIPE, prev);
    }
    return child.finish(timeout_ms);
}

} // namespace qaic::testing

#endif // QAIC_TESTS_SUBPROCESS_H
