/**
 * @file
 * Tests for the stabilizer tableau and the Pauli-rotation canonical
 * form: every conjugation rule is differentially checked against the
 * dense simulator, tableaus satisfy round-trip/adjoint/composition
 * identities, and the Foata normal form is invariant under the
 * commuting reorderings routing produces.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "sim/pauli.h"
#include "sim/tableau.h"
#include "testing/equivalence.h"
#include "testing/generators.h"
#include "util/rng.h"
#include "verify/verify.h"

namespace qaic {
namespace {

using testing::adjointCircuit;
using testing::appendAdjoint;
using testing::randomCliffordCircuit;

/** Dense matrix of a signed Pauli string (qubit 0 = MSB, as Circuit). */
CMatrix
pauliMatrix(const PauliString &p)
{
    static const CMatrix kI = CMatrix::identity(2);
    static const CMatrix kX{{0, 1}, {1, 0}};
    static const CMatrix kY{{0, Cmplx(0, -1)}, {Cmplx(0, 1), 0}};
    static const CMatrix kZ = CMatrix::diag({1, -1});
    CMatrix out = CMatrix::identity(1);
    for (int q = 0; q < p.numQubits(); ++q) {
        const bool x = p.xBit(q), z = p.zBit(q);
        out = out.kron(x ? (z ? kY : kX) : (z ? kZ : kI));
    }
    static const Cmplx kPhases[] = {Cmplx(1, 0), Cmplx(0, 1),
                                    Cmplx(-1, 0), Cmplx(0, -1)};
    return out * kPhases[p.phase()];
}

TEST(PauliStringTest, ProductPhasesMatchDenseAlgebra)
{
    // All 16 single-qubit pairs, embedded on two qubits so cross terms
    // show up too.
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            PauliString pa =
                PauliString::single(2, 0, a & 1, (a >> 1) & 1);
            PauliString pb =
                PauliString::single(2, 0, b & 1, (b >> 1) & 1);
            PauliString prod = pa;
            prod.mulRight(pb);
            CMatrix dense = pauliMatrix(pa) * pauliMatrix(pb);
            EXPECT_TRUE(dense.approxEqual(pauliMatrix(prod), 1e-12))
                << "a=" << a << " b=" << b << " got "
                << prod.toString();
        }
    }
}

TEST(PauliStringTest, CommutationMatchesDense)
{
    Rng rng(3);
    for (int trial = 0; trial < 40; ++trial) {
        PauliString a(3), b(3);
        for (int q = 0; q < 3; ++q) {
            a.setXBit(q, rng.uniformInt(0, 1));
            a.setZBit(q, rng.uniformInt(0, 1));
            b.setXBit(q, rng.uniformInt(0, 1));
            b.setZBit(q, rng.uniformInt(0, 1));
        }
        EXPECT_EQ(a.commutesWith(b),
                  commutes(pauliMatrix(a), pauliMatrix(b), 1e-9));
    }
}

TEST(TableauTest, RowsMatchDenseConjugationPerGateKind)
{
    // Every Clifford gate kind (and the pi/2 rotation foldings) on a
    // 3-qubit register: tableau rows must equal U P U^dag densely.
    std::vector<Gate> gates = {
        makeH(0),          makeS(1),          makeSdg(2),
        makeX(0),          makeY(1),          makeZ(2),
        makeCnot(0, 1),    makeCnot(2, 0),    makeCz(1, 2),
        makeSwap(0, 2),    makeIswap(1, 0),   makeRz(0, M_PI / 2),
        makeRz(1, M_PI),   makeRz(2, -M_PI / 2),
        makeRx(0, M_PI / 2), makeRx(1, M_PI), makeRy(2, M_PI / 2),
        makeRy(0, M_PI),   makeRzz(1, 2, M_PI / 2),
        makeRzz(0, 2, M_PI), makeRzz(0, 1, -M_PI / 2)};
    for (const Gate &g : gates) {
        Circuit c(3);
        c.add(g);
        CMatrix u = c.unitary();
        Tableau t(3);
        t.applyGate(g);
        for (int q = 0; q < 3; ++q) {
            CMatrix x = pauliMatrix(PauliString::single(3, q, true, false));
            CMatrix z = pauliMatrix(PauliString::single(3, q, false, true));
            EXPECT_TRUE((u * x * u.dagger())
                            .approxEqual(pauliMatrix(t.imageX(q)), 1e-9))
                << g.toString() << " X_" << q;
            EXPECT_TRUE((u * z * u.dagger())
                            .approxEqual(pauliMatrix(t.imageZ(q)), 1e-9))
                << g.toString() << " Z_" << q;
        }
    }
}

TEST(TableauTest, RandomCliffordCircuitsMatchDense)
{
    for (int seed = 0; seed < 10; ++seed) {
        Circuit c = randomCliffordCircuit(3, 30, 900 + seed);
        CMatrix u = c.unitary();
        Tableau t(3);
        t.applyCircuit(c);
        for (int q = 0; q < 3; ++q) {
            CMatrix x = pauliMatrix(PauliString::single(3, q, true, false));
            EXPECT_TRUE((u * x * u.dagger())
                            .approxEqual(pauliMatrix(t.imageX(q)), 1e-9))
                << "seed " << seed;
        }
    }
}

TEST(TableauTest, AdjointRoundTripIsIdentity)
{
    for (int seed = 0; seed < 10; ++seed) {
        Circuit c = randomCliffordCircuit(5, 40, 1700 + seed);
        Tableau t(5);
        t.applyCircuit(appendAdjoint(c));
        EXPECT_TRUE(t.isIdentity()) << "seed " << seed;
    }
}

TEST(TableauTest, InverseTableauTracksAdjoint)
{
    for (int seed = 0; seed < 6; ++seed) {
        Circuit c = randomCliffordCircuit(4, 25, 2500 + seed);
        RotationForm form(4);
        ASSERT_TRUE(buildRotationForm(c, &form));
        EXPECT_TRUE(form.rotations.empty());
        Tableau direct(4);
        direct.applyCircuit(c);
        EXPECT_TRUE(form.clifford == direct);
        Tableau adj(4);
        adj.applyCircuit(adjointCircuit(c));
        EXPECT_TRUE(form.cliffordInverse == adj) << "seed " << seed;
    }
}

TEST(TableauTest, CompositionMatchesCircuitConcatenation)
{
    Circuit c1 = randomCliffordCircuit(4, 20, 41);
    Circuit c2 = randomCliffordCircuit(4, 20, 42);
    Tableau t1(4), t2(4), joint(4);
    t1.applyCircuit(c1);
    t2.applyCircuit(c2);
    Circuit both = c1;
    both.append(c2);
    joint.applyCircuit(both);
    EXPECT_TRUE(Tableau::composed(t2, t1) == joint);
}

TEST(TableauTest, SwapNetworkIsQubitPermutation)
{
    Circuit c(5);
    c.add(makeSwap(0, 3));
    c.add(makeSwap(1, 4));
    c.add(makeSwap(3, 2));
    Tableau t(5);
    t.applyCircuit(c);
    std::vector<int> perm;
    ASSERT_TRUE(t.isQubitPermutation(&perm));
    // Content of wire 0 -> wire 3 -> wire 2 after the third swap.
    EXPECT_EQ(perm[0], 2);
    // A Hadamard breaks the permutation structure.
    t.applyGate(makeH(1));
    EXPECT_FALSE(t.isQubitPermutation());
}

TEST(RotationFormTest, FrontedRotationsMatchDenseOnMixedCircuits)
{
    // Build the form on small mixed circuits and validate the sound
    // verdict: structurally different but equivalent presentations
    // produce identical forms.
    Circuit a(2);
    a.add(makeH(0));
    a.add(makeRz(0, 0.8));
    a.add(makeH(0));
    Circuit b(2);
    b.add(makeRx(0, 0.8)); // H Rz H = Rx
    RotationForm fa(2), fb(2);
    ASSERT_TRUE(buildRotationForm(a, &fa));
    ASSERT_TRUE(buildRotationForm(b, &fb));
    ASSERT_EQ(fa.rotations.size(), 1u);
    ASSERT_EQ(fb.rotations.size(), 1u);
    EXPECT_TRUE(fa.rotations[0].axis == fb.rotations[0].axis);
    EXPECT_NEAR(fa.rotations[0].angle, fb.rotations[0].angle, 1e-12);
    EXPECT_TRUE(fa.clifford == fb.clifford);
}

TEST(RotationFormTest, FoataInvariantUnderCommutingReorder)
{
    auto z0 = PauliString::single(4, 0, false, true);
    auto z1 = PauliString::single(4, 1, false, true);
    auto x0 = PauliString::single(4, 0, true, false);
    std::vector<PauliRotation> seq1 = {
        {z0, 0.3}, {z1, 0.4}, {x0, 0.5}, {z1, 0.2}};
    // z1 commutes with everything here except nothing; z0/z1 disjoint
    // from each other, x0 anticommutes with z0.
    std::vector<PauliRotation> seq2 = {
        {z1, 0.4}, {z0, 0.3}, {z1, 0.2}, {x0, 0.5}};
    EXPECT_TRUE(rotationSequencesEquivalent(seq1, seq2, 1e-9));
    // Same axes, different angle: not equivalent.
    std::vector<PauliRotation> seq3 = {
        {z0, 0.3}, {z1, 0.4}, {x0, 0.6}, {z1, 0.2}};
    EXPECT_FALSE(rotationSequencesEquivalent(seq1, seq3, 1e-9));
    // Non-commuting reorder: not equivalent.
    std::vector<PauliRotation> seq4 = {
        {x0, 0.5}, {z0, 0.3}, {z1, 0.4}, {z1, 0.2}};
    EXPECT_FALSE(rotationSequencesEquivalent(seq1, seq4, 1e-9));
}

TEST(RotationFormTest, MergedAndCancelledRotationsNormalize)
{
    auto z0 = PauliString::single(2, 0, false, true);
    auto x0 = PauliString::single(2, 0, true, false);
    // 0.3 + 0.4 around Z merges; the X pair cancels entirely.
    std::vector<PauliRotation> seq1 = {
        {z0, 0.3}, {z0, 0.4}, {x0, 0.7}, {x0, -0.7}, {z0, 0.1}};
    std::vector<PauliRotation> seq2 = {{z0, 0.8}};
    EXPECT_TRUE(rotationSequencesEquivalent(seq1, seq2, 1e-9));
}

TEST(RotationFormTest, CliffordAngleFoldingConsistentWithDense)
{
    // Rz(pi/2) must classify as Clifford and act exactly like S.
    Circuit a(1), b(1);
    a.add(makeRz(0, M_PI / 2));
    b.add(makeS(0));
    EXPECT_TRUE(isCliffordGate(a.gates()[0]));
    Tableau ta(1), tb(1);
    ta.applyCircuit(a);
    tb.applyCircuit(b);
    EXPECT_TRUE(ta == tb);
    // A nearby non-multiple is not folded.
    EXPECT_FALSE(isCliffordGate(makeRz(0, M_PI / 2 + 1e-3)));
}

} // namespace
} // namespace qaic
