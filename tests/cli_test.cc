/**
 * @file
 * End-to-end smoke tests for the qaicc command-line driver, run as a
 * subprocess: flag combinations across topologies/routers/pulse
 * library/timings must compile a small program and report sane output,
 * and malformed invocations must be rejected with the usage exit code
 * rather than crashing.
 *
 * Invocations go through tests/subprocess.h: stdout and stderr are
 * captured separately (reports must land on stdout, errors on stderr)
 * and every run carries a hard timeout, so a hung CLI fails its test
 * instead of wedging ctest. The daemon lifecycle tests
 * (tests/daemon_test.cc) reuse the same harness.
 */
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "subprocess.h"

namespace {

using qaic::testing::SubprocessResult;
using qaic::testing::runCommand;

#ifndef QAICC_BIN
#define QAICC_BIN "./qaicc"
#endif

/** Generous per-invocation deadline: a compile takes well under a
 *  second; only a wedged process gets anywhere near this. */
constexpr int kTimeoutMs = 60000;

SubprocessResult
runQaicc(const std::string &args)
{
    SubprocessResult result =
        runCommand(std::string(QAICC_BIN) + " " + args, kTimeoutMs);
    EXPECT_FALSE(result.timedOut)
        << "qaicc " << args << " exceeded " << kTimeoutMs << "ms";
    return result;
}

/**
 * Writes a small well-formed program and returns its path. The name is
 * pid-unique: ctest runs every CliTest case as its own process, and
 * concurrent cases must not truncate each other's input mid-read.
 */
std::string
sampleProgram()
{
    const std::string path =
        "cli_test_sample_" + std::to_string(getpid()) + ".qasm";
    std::ofstream out(path);
    out << "# cli smoke circuit\n"
           "qubits 4\n"
           "h q0\n"
           "cnot q0 q1\n"
           "rz(0.55) q2\n"
           "rzz(1.2) q1 q3\n"
           "cnot q2 q3\n"
           "t q3\n";
    return path;
}

TEST(CliTest, CompilesWithDefaultFlags)
{
    SubprocessResult r = runQaicc(sampleProgram());
    ASSERT_EQ(r.exitCode, 0) << r.out << r.err;
    EXPECT_NE(r.out.find("latency"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("est. output fidelity"), std::string::npos);
    // A clean compile reports on stdout only.
    EXPECT_EQ(r.err, "") << "unexpected stderr chatter: " << r.err;
}

TEST(CliTest, TopologyRouterMatrixCompiles)
{
    const char *topologies[] = {"line",      "ring",           "grid",
                                "heavy-hex", "random-regular", "full"};
    const char *routers[] = {"baseline", "lookahead"};
    const std::string program = sampleProgram();
    for (const char *topology : topologies) {
        for (const char *router : routers) {
            SubprocessResult r =
                runQaicc("--topology " + std::string(topology) +
                         " --router " + router + " --verify " + program);
            ASSERT_EQ(r.exitCode, 0)
                << topology << "/" << router << "\n"
                << r.out << r.err;
            EXPECT_NE(r.out.find(topology), std::string::npos);
            EXPECT_NE(r.out.find("backend semantics: OK"),
                      std::string::npos)
                << topology << "/" << router;
        }
    }
}

TEST(CliTest, TimingsAndScheduleAndStrategyFlags)
{
    const std::string program = sampleProgram();
    SubprocessResult r =
        runQaicc("--strategy isa --schedule --timings " + program);
    ASSERT_EQ(r.exitCode, 0) << r.out << r.err;
    EXPECT_NE(r.out.find("passes:"), std::string::npos);
    EXPECT_NE(r.out.find("schedule:"), std::string::npos);
    EXPECT_NE(r.out.find("latency cache:"), std::string::npos);
}

TEST(CliTest, PulseLibraryRoundTripAcrossRuns)
{
    const std::string program = sampleProgram();
    const std::string lib =
        "cli_test_pulses_" + std::to_string(getpid()) + ".qplb";
    std::remove(lib.c_str());
    SubprocessResult first =
        runQaicc("--width 2 --pulse-lib " + lib + " --timings " + program);
    ASSERT_EQ(first.exitCode, 0) << first.out << first.err;
    EXPECT_NE(first.out.find("pulse library:"), std::string::npos);
    // Second run must load the flushed library file.
    SubprocessResult second =
        runQaicc("--width 2 --pulse-lib " + lib + " --timings " + program);
    ASSERT_EQ(second.exitCode, 0) << second.out << second.err;
    EXPECT_NE(second.out.find("pulse library:"), std::string::npos);
    std::remove(lib.c_str());
}

TEST(CliTest, MalformedInvocationsAreRejected)
{
    const std::string program = sampleProgram();
    // Unknown flag, unknown enum values, missing operands: usage (2).
    EXPECT_EQ(runQaicc("--bogus " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("--topology moebius " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("--router psychic " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("--strategy yolo " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("--width 1 " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("").exitCode, 2);
    EXPECT_EQ(runQaicc(program + " extra.qasm").exitCode, 2);
    // Usage goes to stderr, never stdout.
    SubprocessResult usage = runQaicc("--bogus " + program);
    EXPECT_EQ(usage.out, "");
    EXPECT_NE(usage.err.find("usage:"), std::string::npos) << usage.err;
    // Unreadable input and malformed programs: clean error (1).
    EXPECT_EQ(runQaicc("no_such_file.qasm").exitCode, 1);
    const std::string broken =
        "cli_test_broken_" + std::to_string(getpid()) + ".qasm";
    {
        std::ofstream out(broken);
        out << "qubits 2\nh q99\n";
    }
    SubprocessResult r = runQaicc(broken);
    EXPECT_EQ(r.exitCode, 1);
    // The diagnostic names the input file — on stderr, with stdout
    // clean (nothing was compiled).
    EXPECT_NE(r.err.find(broken), std::string::npos) << r.err;
    EXPECT_EQ(r.out, "");
}

} // namespace
