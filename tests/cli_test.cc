/**
 * @file
 * End-to-end smoke tests for the qaicc command-line driver, run as a
 * subprocess: flag combinations across topologies/routers/pulse
 * library/timings must compile a small program and report sane output,
 * and malformed invocations must be rejected with the usage exit code
 * rather than crashing.
 */
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace {

#ifndef QAICC_BIN
#define QAICC_BIN "./qaicc"
#endif

struct RunResult
{
    int exitCode = -1;
    std::string output;
};

RunResult
runQaicc(const std::string &args)
{
    const std::string command =
        std::string(QAICC_BIN) + " " + args + " 2>&1";
    RunResult result;
    FILE *pipe = popen(command.c_str(), "r");
    if (!pipe)
        return result;
    char buffer[512];
    while (std::fgets(buffer, sizeof(buffer), pipe))
        result.output += buffer;
    const int status = pclose(pipe);
    result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

/**
 * Writes a small well-formed program and returns its path. The name is
 * pid-unique: ctest runs every CliTest case as its own process, and
 * concurrent cases must not truncate each other's input mid-read.
 */
std::string
sampleProgram()
{
    const std::string path =
        "cli_test_sample_" + std::to_string(getpid()) + ".qasm";
    std::ofstream out(path);
    out << "# cli smoke circuit\n"
           "qubits 4\n"
           "h q0\n"
           "cnot q0 q1\n"
           "rz(0.55) q2\n"
           "rzz(1.2) q1 q3\n"
           "cnot q2 q3\n"
           "t q3\n";
    return path;
}

TEST(CliTest, CompilesWithDefaultFlags)
{
    RunResult r = runQaicc(sampleProgram());
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("latency"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("est. output fidelity"), std::string::npos);
}

TEST(CliTest, TopologyRouterMatrixCompiles)
{
    const char *topologies[] = {"line", "ring",           "grid",
                                "heavy-hex", "random-regular", "full"};
    const char *routers[] = {"baseline", "lookahead"};
    const std::string program = sampleProgram();
    for (const char *topology : topologies) {
        for (const char *router : routers) {
            RunResult r = runQaicc("--topology " + std::string(topology) +
                                   " --router " + router + " --verify " +
                                   program);
            ASSERT_EQ(r.exitCode, 0)
                << topology << "/" << router << "\n"
                << r.output;
            EXPECT_NE(r.output.find(topology), std::string::npos);
            EXPECT_NE(r.output.find("backend semantics: OK"),
                      std::string::npos)
                << topology << "/" << router;
        }
    }
}

TEST(CliTest, TimingsAndScheduleAndStrategyFlags)
{
    const std::string program = sampleProgram();
    RunResult r = runQaicc("--strategy isa --schedule --timings " +
                           program);
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("passes:"), std::string::npos);
    EXPECT_NE(r.output.find("schedule:"), std::string::npos);
    EXPECT_NE(r.output.find("latency cache:"), std::string::npos);
}

TEST(CliTest, PulseLibraryRoundTripAcrossRuns)
{
    const std::string program = sampleProgram();
    const std::string lib =
        "cli_test_pulses_" + std::to_string(getpid()) + ".qplb";
    std::remove(lib.c_str());
    RunResult first =
        runQaicc("--width 2 --pulse-lib " + lib + " --timings " + program);
    ASSERT_EQ(first.exitCode, 0) << first.output;
    EXPECT_NE(first.output.find("pulse library:"), std::string::npos);
    // Second run must load the flushed library file.
    RunResult second =
        runQaicc("--width 2 --pulse-lib " + lib + " --timings " + program);
    ASSERT_EQ(second.exitCode, 0) << second.output;
    EXPECT_NE(second.output.find("pulse library:"), std::string::npos);
    std::remove(lib.c_str());
}

TEST(CliTest, MalformedInvocationsAreRejected)
{
    const std::string program = sampleProgram();
    // Unknown flag, unknown enum values, missing operands: usage (2).
    EXPECT_EQ(runQaicc("--bogus " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("--topology moebius " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("--router psychic " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("--strategy yolo " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("--width 1 " + program).exitCode, 2);
    EXPECT_EQ(runQaicc("").exitCode, 2);
    EXPECT_EQ(runQaicc(program + " extra.qasm").exitCode, 2);
    // Unreadable input and malformed programs: clean error (1).
    EXPECT_EQ(runQaicc("no_such_file.qasm").exitCode, 1);
    const std::string broken =
        "cli_test_broken_" + std::to_string(getpid()) + ".qasm";
    {
        std::ofstream out(broken);
        out << "qubits 2\nh q99\n";
    }
    RunResult r = runQaicc(broken);
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find(broken), std::string::npos) << r.output;
}

} // namespace
