/**
 * @file
 * Tests for instruction aggregation: diagonal-block detection (4.2),
 * monotonic-action aggregation (4.3), width limits and semantics
 * preservation.
 */
#include <gtest/gtest.h>

#include "aggregate/aggregate.h"
#include "oracle/oracle.h"
#include "schedule/schedule.h"
#include "verify/verify.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"

namespace qaic {
namespace {

TEST(DiagonalBlocksTest, ContractsCnotRzCnot)
{
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRz(1, 5.67));
    c.add(makeCnot(0, 1));
    int found = 0;
    Circuit out = detectDiagonalBlocks(c, 10, &found);
    EXPECT_EQ(found, 1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gates()[0].kind, GateKind::kAggregate);
    EXPECT_TRUE(out.gates()[0].isDiagonal());
    EXPECT_TRUE(circuitsEquivalent(c, out));
}

TEST(DiagonalBlocksTest, SkipsInterleavedDisjointGates)
{
    // A gate on an unrelated qubit between the block members must not
    // break detection (it commutes trivially).
    Circuit c(3);
    c.add(makeCnot(0, 1));
    c.add(makeH(2));
    c.add(makeRz(1, 1.0));
    c.add(makeCnot(0, 1));
    int found = 0;
    Circuit out = detectDiagonalBlocks(c, 10, &found);
    EXPECT_EQ(found, 1);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_TRUE(circuitsEquivalent(c, out));
}

TEST(DiagonalBlocksTest, EmitSiteOfEarlierBlockIsABarrier)
{
    // Regression: two overlapping-support blocks whose spans interleave.
    // The first block [Rz(0), CNOT(0,1), Rz(1), CNOT(0,1)] contracts
    // and its aggregate is emitted at the last member's position. The
    // H(1) at position 1 was scanned past while the first block's
    // support was still {0} — so no per-gate check ever compared it
    // against qubit 1, which the block picked up later. A second block
    // starting from that H(1) must treat the first block's emit site
    // as a barrier: sliding H(1) across the contracted ZZ-rotation is
    // not sound (they share qubit 1 and do not commute), and before
    // the fix this miscompiled with an O(1) unitary error.
    Circuit c(3);
    c.add(makeRz(0, 0.3));  // block A, support {0} at this point
    c.add(makeH(1));        // skipped by A's scan as disjoint
    c.add(makeCnot(0, 1));  // A's support grows to {0,1}
    c.add(makeRz(1, 0.5));
    c.add(makeCnot(0, 1));  // A's diagonal prefix ends here (emit site)
    c.add(makeX(1));        // would-be block B: H, X, H, CZ has a
    c.add(makeH(1));        //   diagonal product (H X H = Z)...
    c.add(makeCz(1, 2));    //   ...but B may not slide across A.
    int found = 0;
    Circuit out = detectDiagonalBlocks(c, 10, &found);
    EXPECT_EQ(found, 1);
    EXPECT_TRUE(circuitsEquivalent(c, out));
}

TEST(DiagonalBlocksTest, DisjointEarlierBlockStillInterleaves)
{
    // Same shape, but the second block lives on a disjoint pair: the
    // emit-site barrier must NOT fire and both blocks contract.
    Circuit c(4);
    c.add(makeCnot(0, 1)); // block A on {0,1}
    c.add(makeH(2));       // block B on {2,3}, interleaved
    c.add(makeRz(1, 0.5));
    c.add(makeCnot(0, 1)); // A's emit site
    c.add(makeX(2));
    c.add(makeH(2));
    c.add(makeCz(2, 3));
    int found = 0;
    Circuit out = detectDiagonalBlocks(c, 10, &found);
    EXPECT_EQ(found, 2);
    EXPECT_TRUE(circuitsEquivalent(c, out));
}

TEST(DiagonalBlocksTest, IgnoresNonDiagonalRuns)
{
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRx(1, 1.0)); // Breaks diagonality.
    c.add(makeCnot(0, 1));
    int found = 0;
    Circuit out = detectDiagonalBlocks(c, 10, &found);
    EXPECT_EQ(found, 0);
    EXPECT_EQ(out.size(), c.size());
}

TEST(DiagonalBlocksTest, FindsLongestDiagonalPrefix)
{
    // CNOT Rz CNOT followed by H on the pair: only the first three fold.
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRz(1, 0.8));
    c.add(makeCnot(0, 1));
    c.add(makeH(0));
    int found = 0;
    Circuit out = detectDiagonalBlocks(c, 10, &found);
    EXPECT_EQ(found, 1);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_TRUE(circuitsEquivalent(c, out));
}

TEST(DiagonalBlocksTest, RespectsLengthLimit)
{
    Circuit c(2);
    for (int k = 0; k < 4; ++k) {
        c.add(makeCnot(0, 1));
        c.add(makeRz(1, 0.3));
        c.add(makeCnot(0, 1));
    }
    int found = 0;
    detectDiagonalBlocks(c, 3, &found);
    EXPECT_GE(found, 1); // Limited runs, but still finds short blocks.
    Circuit out = detectDiagonalBlocks(c, 12, &found);
    EXPECT_TRUE(circuitsEquivalent(c, out));
}

TEST(DiagonalBlocksTest, QaoaCostLayerFullyContracts)
{
    Circuit c = qaoaMaxcut(lineGraph(5));
    int found = 0;
    Circuit out = detectDiagonalBlocks(c, 10, &found);
    EXPECT_EQ(found, 4); // One block per edge.
    EXPECT_TRUE(circuitsEquivalent(c, out));
}

TEST(AggregationTest, MergesSerialChain)
{
    CommutationChecker checker;
    AnalyticOracle oracle;
    Circuit c(3);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    c.add(makeCnot(1, 2));
    c.add(makeH(2));

    AggregationOptions opt;
    opt.maxWidth = 3;
    AggregationResult result =
        aggregateInstructions(c, &checker, oracle, opt);
    EXPECT_GT(result.actions, 0);
    EXPECT_LT(result.circuit.size(), c.size());
    EXPECT_TRUE(circuitsEquivalent(c, result.circuit));

    // Latency must not increase (monotonic actions only).
    double before = scheduleAsap(c, oracle).makespan();
    double after = scheduleAsap(result.circuit, oracle).makespan();
    EXPECT_LE(after, before + 1e-9);
    EXPECT_LT(after, before); // Overheads elide, so strictly better here.
}

TEST(AggregationTest, RespectsWidthLimit)
{
    CommutationChecker checker;
    AnalyticOracle oracle;
    Circuit c(6);
    for (int q = 0; q + 1 < 6; ++q)
        c.add(makeCnot(q, q + 1));

    for (int width : {2, 3, 4}) {
        AggregationOptions opt;
        opt.maxWidth = width;
        AggregationResult result =
            aggregateInstructions(c, &checker, oracle, opt);
        EXPECT_LE(result.circuit.maxGateWidth(), width);
        EXPECT_TRUE(circuitsEquivalent(c, result.circuit));
    }
}

TEST(AggregationTest, WiderLimitNeverHurtsSerialCircuits)
{
    CommutationChecker checker;
    AnalyticOracle oracle;
    // Serial chain: latency should be non-increasing in allowed width
    // (Figure 10's "serialized applications" panel).
    Circuit c(5);
    for (int q = 0; q + 1 < 5; ++q) {
        c.add(makeCnot(q, q + 1));
        c.add(makeH(q + 1));
    }
    double prev = 1e300;
    for (int width : {2, 3, 4, 5}) {
        AggregationOptions opt;
        opt.maxWidth = width;
        AggregationResult result =
            aggregateInstructions(c, &checker, oracle, opt);
        double latency = scheduleAsap(result.circuit, oracle).makespan();
        EXPECT_LE(latency, prev + 1e-9);
        prev = latency;
    }
}

TEST(AggregationTest, PreservesParallelism)
{
    // Figure 8's lesson: merging across parallel branches must not
    // serialize the circuit. Two independent chains stay independent.
    CommutationChecker checker;
    AnalyticOracle oracle;
    Circuit c(4);
    c.add(makeCnot(0, 1));
    c.add(makeCnot(2, 3));
    c.add(makeRz(1, 0.4));
    c.add(makeRz(3, 0.4));

    AggregationOptions opt;
    opt.maxWidth = 4;
    AggregationResult result =
        aggregateInstructions(c, &checker, oracle, opt);
    double before = scheduleAsap(c, oracle).makespan();
    double after = scheduleAsap(result.circuit, oracle).makespan();
    EXPECT_LE(after, before + 1e-9);
    // No instruction should span both independent chains.
    for (const Gate &g : result.circuit.gates()) {
        bool left = g.actsOn(0) || g.actsOn(1);
        bool right = g.actsOn(2) || g.actsOn(3);
        EXPECT_FALSE(left && right) << g.toString();
    }
}

TEST(AggregationTest, MobilityThroughCommutingGate)
{
    // CNOT(0,1) .. Rz(0) .. CNOT(0,1): the Rz commutes with the control,
    // so all three should fold into one instruction.
    CommutationChecker checker;
    AnalyticOracle oracle;
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRz(0, 0.9));
    c.add(makeCnot(0, 1));
    AggregationOptions opt;
    opt.maxWidth = 2;
    AggregationResult result =
        aggregateInstructions(c, &checker, oracle, opt);
    EXPECT_EQ(result.circuit.size(), 1u);
    EXPECT_TRUE(circuitsEquivalent(c, result.circuit));
}

TEST(AggregationTest, LabelsAreSequentialAndKeepProvenance)
{
    CommutationChecker checker;
    AnalyticOracle oracle;
    Circuit c(4);
    c.add(makeCnot(0, 1));
    c.add(makeRz(1, 1.0));
    c.add(makeCnot(2, 3));
    c.add(makeRz(3, 1.0));
    AggregationResult result =
        aggregateInstructions(c, &checker, oracle, {});
    int seen = 0;
    for (const Gate &g : result.circuit.gates())
        if (g.kind == GateKind::kAggregate) {
            ++seen;
            // "G<n>:<member provenance>" — numbering for reports, the
            // composed member labels for diagnostics (a merge used to
            // relabel everything to the constant "agg").
            std::string prefix = "G" + std::to_string(seen) + ":";
            EXPECT_EQ(g.payload->label.rfind(prefix, 0), 0u)
                << g.payload->label;
            EXPECT_NE(g.payload->label.find("cnot"), std::string::npos)
                << g.payload->label;
            EXPECT_NE(g.payload->label.find("rz"), std::string::npos)
                << g.payload->label;
        }
    EXPECT_GT(seen, 0);
}

TEST(AggregationTest, MergeProvenanceSurvivesRelabeling)
{
    // Labels must survive relabelGate (routing rewrites qubit ids) and
    // stay bounded no matter how many merges compose.
    Gate block = makeAggregate(
        {makeCnot(0, 1), makeRz(1, 0.5), makeCnot(0, 1)}, "cnot+rz+cnot");
    Gate moved = relabelGate(block, {3, 2, 1, 0});
    ASSERT_EQ(moved.kind, GateKind::kAggregate);
    EXPECT_EQ(moved.payload->label, "cnot+rz+cnot");

    CommutationChecker checker;
    AnalyticOracle oracle;
    Circuit chain(2);
    for (int i = 0; i < 24; ++i) {
        chain.add(makeCnot(0, 1));
        chain.add(makeRz(1, 0.1 + 0.05 * i));
        chain.add(makeCnot(0, 1));
    }
    AggregationOptions opt;
    opt.maxWidth = 2;
    opt.maxRounds = 8;
    AggregationResult result =
        aggregateInstructions(chain, &checker, oracle, opt);
    for (const Gate &g : result.circuit.gates()) {
        if (g.kind == GateKind::kAggregate) {
            EXPECT_LE(g.payload->label.size(), 70u) << g.payload->label;
        }
    }
}

TEST(AggregationTest, EmptyAndTrivialCircuits)
{
    CommutationChecker checker;
    AnalyticOracle oracle;
    Circuit single(2);
    single.add(makeCnot(0, 1));
    AggregationResult result =
        aggregateInstructions(single, &checker, oracle, {});
    EXPECT_EQ(result.circuit.size(), 1u);
    EXPECT_EQ(result.actions, 0);
}

TEST(AggregationTest, QaoaEndToEndEquivalence)
{
    CommutationChecker checker;
    AnalyticOracle oracle;
    Circuit c = qaoaMaxcut(lineGraph(5));
    Circuit detected = detectDiagonalBlocks(c, 10, nullptr);
    AggregationOptions opt;
    opt.maxWidth = 4;
    AggregationResult result =
        aggregateInstructions(detected, &checker, oracle, opt);
    EXPECT_TRUE(circuitsEquivalent(c, result.circuit, 1e-6, 5));
    double before = scheduleAsap(c, oracle).makespan();
    double after = scheduleAsap(result.circuit, oracle).makespan();
    EXPECT_LT(after, before * 0.6);
}

} // namespace
} // namespace qaic
