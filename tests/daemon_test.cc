/**
 * @file
 * Lifecycle tests for the qaiccd daemon binary, driven end to end over
 * its real stdin/stdout pipes via tests/subprocess.h (the same harness
 * cli_test.cc uses — separate stderr capture, per-read and per-run
 * deadlines, SIGKILL on hang).
 *
 * Covered: happy-path compile over the wire, malformed frames answered
 * in-stream without killing the process, cache hits and a tier
 * promotion observed across repeated requests, admission rejection
 * echoing the request id (forced via the service_queue_overflow
 * failpoint's environment channel), EOF drain, and the shutdown
 * handshake (ack is the last stdout line; exit code 0; serving
 * summary on stderr).
 */
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/protocol.h"
#include "subprocess.h"

namespace {

using qaic::StatusOr;
using qaic::service::JsonValue;
using qaic::service::parseJson;
using qaic::testing::Subprocess;
using qaic::testing::SubprocessResult;

#ifndef QAICCD_BIN
#define QAICCD_BIN "./qaiccd"
#endif

/** Per-reply read deadline; a silent daemon is a failed test. */
constexpr int kReadMs = 30000;
/** Shutdown drain deadline. */
constexpr int kFinishMs = 60000;

const char kQasmFrame[] =
    "{\"id\":\"%ID%\",\"qasm\":\"qubits 3\\nh q0\\ncnot q0 q1\\n"
    "cnot q1 q2\\n\",\"topology\":\"line\",\"width\":4}";

std::string
compileFrame(const std::string &id)
{
    std::string frame = kQasmFrame;
    frame.replace(frame.find("%ID%"), 4, id);
    return frame;
}

/** Reads one reply line and parses it; fails the test on deadline. */
JsonValue
readReply(Subprocess &daemon)
{
    std::string line;
    if (!daemon.readLine(&line, kReadMs)) {
        ADD_FAILURE() << "daemon produced no reply within " << kReadMs
                      << "ms; stderr so far: " << daemon.errText();
        return JsonValue{};
    }
    StatusOr<JsonValue> parsed = parseJson(line);
    if (!parsed.isOk()) {
        ADD_FAILURE() << "reply is not valid JSON: " << line;
        return JsonValue{};
    }
    return parsed.value();
}

bool
replyOk(const JsonValue &reply)
{
    const JsonValue *ok = reply.find("ok");
    return ok && ok->kind == JsonValue::Kind::kBool && ok->boolean;
}

std::string
replyString(const JsonValue &reply, const std::string &key)
{
    const JsonValue *value = reply.find(key);
    return value ? value->string : std::string();
}

double
replyNumber(const JsonValue &reply, const std::string &key)
{
    const JsonValue *value = reply.find(key);
    return value ? value->number : -1.0;
}

TEST(DaemonTest, HappyPathMalformedFrameAndShutdownHandshake)
{
    Subprocess daemon;
    ASSERT_TRUE(daemon.start(std::string(QAICCD_BIN) +
                             " --no-grape --workers 2"));

    // Ping establishes the session.
    ASSERT_TRUE(daemon.writeLine("{\"id\":\"p\",\"op\":\"ping\"}"));
    JsonValue pong = readReply(daemon);
    EXPECT_TRUE(replyOk(pong));
    EXPECT_EQ(replyString(pong, "id"), "p");

    // Happy-path compile.
    ASSERT_TRUE(daemon.writeLine(compileFrame("r1")));
    JsonValue compiled = readReply(daemon);
    ASSERT_TRUE(replyOk(compiled));
    EXPECT_EQ(replyString(compiled, "id"), "r1");
    EXPECT_EQ(replyNumber(compiled, "tier"), 0.0);
    EXPECT_GT(replyNumber(compiled, "latency_ns"), 0.0);
    EXPECT_FALSE(replyString(compiled, "fingerprint").empty());

    // A malformed frame is answered in-stream; the daemon survives.
    ASSERT_TRUE(daemon.writeLine("{this is not json"));
    JsonValue error = readReply(daemon);
    EXPECT_FALSE(replyOk(error));
    ASSERT_NE(error.find("error"), nullptr);
    EXPECT_FALSE(replyString(*error.find("error"), "code").empty());

    // Still serving after the hostile frame (and from cache now).
    ASSERT_TRUE(daemon.writeLine(compileFrame("r2")));
    JsonValue cached = readReply(daemon);
    ASSERT_TRUE(replyOk(cached));
    const JsonValue *cached_flag = cached.find("cached");
    ASSERT_NE(cached_flag, nullptr);
    EXPECT_TRUE(cached_flag->boolean);
    EXPECT_EQ(replyString(cached, "fingerprint"),
              replyString(compiled, "fingerprint"));

    // Shutdown handshake: the ack is the daemon's LAST stdout line,
    // the process exits 0, and the serving summary lands on stderr.
    ASSERT_TRUE(daemon.writeLine("{\"id\":\"bye\",\"op\":\"shutdown\"}"));
    JsonValue ack = readReply(daemon);
    EXPECT_TRUE(replyOk(ack));
    const JsonValue *shutting = ack.find("shutting_down");
    ASSERT_NE(shutting, nullptr);
    EXPECT_TRUE(shutting->boolean);

    SubprocessResult result = daemon.finish(kFinishMs);
    EXPECT_FALSE(result.timedOut) << "shutdown drain wedged";
    EXPECT_EQ(result.exitCode, 0) << result.err;
    EXPECT_EQ(result.out, "") << "the ack must be the last stdout line";
    EXPECT_NE(result.err.find("qaiccd:"), std::string::npos)
        << "missing serving summary on stderr: " << result.err;
}

TEST(DaemonTest, RepeatedRequestsPromoteToTier1)
{
    Subprocess daemon;
    ASSERT_TRUE(daemon.start(std::string(QAICCD_BIN) +
                             " --no-grape --promote-after 2 --workers 2"));

    // Drive the same fingerprint until the background promoter swaps
    // in the tier-1 artifact. Promotion is asynchronous, so poll: each
    // round sends a request and inspects the tier of the reply.
    int promoted_at = -1;
    double tier0_latency = -1.0, tier1_latency = -1.0;
    for (int round = 0; round < 50; ++round) {
        ASSERT_TRUE(
            daemon.writeLine(compileFrame("r" + std::to_string(round))));
        JsonValue reply = readReply(daemon);
        ASSERT_TRUE(replyOk(reply)) << "round " << round;
        if (replyNumber(reply, "tier") >= 1.0) {
            promoted_at = round;
            tier1_latency = replyNumber(reply, "latency_ns");
            tier0_latency = replyNumber(reply, "tier0_latency_ns");
            break;
        }
        tier0_latency = replyNumber(reply, "latency_ns");
        usleep(50 * 1000); // give the promoter a slice
    }
    ASSERT_GE(promoted_at, 0)
        << "no promotion observed in 50 rounds; stderr: "
        << daemon.errText();
    // Never-worse guard over the wire: promoted latency is bounded by
    // the tier-0 answer it replaced.
    EXPECT_LE(tier1_latency, tier0_latency + 1e-9);

    // Stats must agree that a promotion happened.
    ASSERT_TRUE(daemon.writeLine("{\"id\":\"s\",\"op\":\"stats\"}"));
    JsonValue stats_reply = readReply(daemon);
    ASSERT_TRUE(replyOk(stats_reply));
    const JsonValue *stats = stats_reply.find("stats");
    ASSERT_NE(stats, nullptr);
    const JsonValue *promotions = stats->find("promotions");
    ASSERT_NE(promotions, nullptr);
    EXPECT_GE(promotions->number, 1.0);

    SubprocessResult result = daemon.finish(kFinishMs);
    EXPECT_EQ(result.exitCode, 0) << result.err;
}

TEST(DaemonTest, AdmissionRejectionEchoesRequestId)
{
    // The queue-overflow failpoint (env channel, util/failpoint.h)
    // makes admission control reject every compile deterministically —
    // no racy queue-filling needed. Regression under test: the daemon
    // once built the UNAVAILABLE reply from a moved-from request, so
    // every rejection carried "id":"" and a pipelining client could
    // not tell which request was turned away.
    Subprocess daemon;
    ASSERT_TRUE(daemon.start(
        "QAIC_FAILPOINTS=service_queue_overflow=always " +
        std::string(QAICCD_BIN) +
        " --no-grape --workers 1 --queue-capacity 1"));

    ASSERT_TRUE(daemon.writeLine(compileFrame("rejected-r1")));
    JsonValue rejected = readReply(daemon);
    EXPECT_FALSE(replyOk(rejected));
    EXPECT_EQ(replyString(rejected, "id"), "rejected-r1")
        << "a rejection must echo the request id for correlation";
    const JsonValue *error = rejected.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(replyString(*error, "code"), "UNAVAILABLE");

    // The daemon keeps serving after shedding load: control frames
    // bypass admission entirely.
    ASSERT_TRUE(daemon.writeLine("{\"id\":\"p\",\"op\":\"ping\"}"));
    JsonValue pong = readReply(daemon);
    EXPECT_TRUE(replyOk(pong));
    EXPECT_EQ(replyString(pong, "id"), "p");

    SubprocessResult result = daemon.finish(kFinishMs);
    EXPECT_FALSE(result.timedOut);
    EXPECT_EQ(result.exitCode, 0) << result.err;
}

TEST(DaemonTest, EofDrainsAndExitsZero)
{
    Subprocess daemon;
    ASSERT_TRUE(daemon.start(std::string(QAICCD_BIN) + " --no-grape"));
    // Burst of pipelined requests, then immediate EOF: the daemon must
    // answer every admitted frame before exiting (drain, not abort).
    const int kBurst = 12;
    for (int i = 0; i < kBurst; ++i)
        ASSERT_TRUE(
            daemon.writeLine(compileFrame("b" + std::to_string(i))));
    SubprocessResult result = daemon.finish(kFinishMs);
    EXPECT_FALSE(result.timedOut);
    EXPECT_EQ(result.exitCode, 0) << result.err;

    // Count complete reply lines; admission control may reject some of
    // the burst, but every frame gets exactly one reply.
    int replies = 0;
    std::size_t at = 0;
    while ((at = result.out.find('\n', at)) != std::string::npos) {
        ++replies;
        ++at;
    }
    EXPECT_EQ(replies, kBurst) << result.out;
}

TEST(DaemonTest, BadFlagsExitWithUsage)
{
    SubprocessResult r = qaic::testing::runCommand(
        std::string(QAICCD_BIN) + " --bogus", 20000);
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.err.find("usage:"), std::string::npos) << r.err;
    SubprocessResult w = qaic::testing::runCommand(
        std::string(QAICCD_BIN) + " --workers 0", 20000);
    EXPECT_EQ(w.exitCode, 2);
}

} // namespace
