/**
 * @file
 * Seeded randomized-circuit routing fuzz: ~200 random circuits of mixed
 * 1q/2q gates and varying widths, compiled end to end through two
 * strategies on the grid and heavy-hex topologies, asserting topology
 * legality and permutation-aware statevector equivalence for every one.
 *
 * This is the wide-net companion to the targeted cases in
 * mapping_test.cc: any router bug that survives those — a misordered
 * lookahead emission, a stale occupant under an oversized register, a
 * decay tie broken differently across runs — has ~1600 chances to
 * produce a wrong unitary here.
 */
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "device/topology.h"
#include "mapping/mapping.h"
#include "testing/generators.h"
#include "verify/verify.h"

namespace qaic {
namespace {

using testing::randomCircuit;

TEST(RoutingFuzzTest, RandomCircuitsCompileEquivalentlyEverywhere)
{
    constexpr int kCircuits = 200;
    for (int seed = 0; seed < kCircuits; ++seed) {
        // Widths 3..6, 12..30 gates, all derived from the seed.
        const int width = 3 + seed % 4;
        const int gates = 12 + (seed * 5) % 19;
        Circuit c = randomCircuit(width, gates, 9000 + seed);

        for (Topology topology : {Topology::kGrid, Topology::kHeavyHex}) {
            DeviceModel device =
                deviceForTopology(topology, c.numQubits(),
                                  /*seed=*/11 + seed);
            Compiler compiler(device);
            for (Strategy strategy :
                 {Strategy::kIsa, Strategy::kAggregation}) {
                CompilationResult result = compiler.compile(c, strategy);
                ASSERT_TRUE(
                    respectsTopology(result.routing.physical, device))
                    << "seed " << seed << " on "
                    << topologyName(topology) << " under "
                    << strategyName(strategy);
                ASSERT_TRUE(routedEquivalent(c, result.routing,
                                             device.numQubits(), 1e-6,
                                             /*samples=*/2,
                                             /*seed=*/17 + seed))
                    << "seed " << seed << " on "
                    << topologyName(topology) << " under "
                    << strategyName(strategy);
                // The backend stream must implement the routed circuit
                // (equivalence of the full physical program, aggregated
                // or lowered, against the routing output).
                ASSERT_TRUE(circuitsEquivalent(result.routing.physical,
                                               result.physicalCircuit,
                                               1e-6, 6))
                    << "seed " << seed << " on "
                    << topologyName(topology) << " under "
                    << strategyName(strategy);
            }
        }
    }
}

} // namespace
} // namespace qaic
