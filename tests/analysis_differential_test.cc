/**
 * @file
 * Differential tests for the dataflow analyzer: every removable claim
 * on seeded random circuits is re-verified *externally* through the
 * equivalence engine (the analyzer's own cross-check is switched off,
 * so the claims face the engine cold), the built-in cross-check
 * reports zero refuted claims across the corpus, and the paper
 * workload suite analyzes cleanly end to end through the compiler.
 */
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "compiler/compiler.h"
#include "device/device.h"
#include "testing/generators.h"
#include "verify/verify.h"
#include "workloads/suite.h"

namespace qaic {
namespace {

using testing::randomCircuit;
using testing::randomCliffordCircuit;
using testing::randomDiagonalCircuit;

/**
 * Externally re-proves every removable claim of @p report against
 * @p circuit. Claims the engine cannot decide are tolerated (the
 * analyzer's own pass would have suppressed them); refutations are
 * hard failures.
 */
void
reverifyExternally(const Circuit &circuit, const AnalysisReport &report)
{
    for (const Diagnostic &d : report.diagnostics) {
        if (!d.removable || d.fix.empty())
            continue;
        Circuit fixed = applySuggestedFix(circuit, d.fix);
        EquivalenceReport check =
            d.mode == VerificationMode::kUnitary
                ? analyzeCircuitsEquivalent(circuit, fixed)
                : analyzeZeroStateEquivalent(circuit, fixed);
        EXPECT_NE(check.verdict, EquivalenceVerdict::kNotEquivalent)
            << d.toString() << " refuted: " << check.note;
    }
}

TEST(AnalysisDifferentialTest, RandomMixedCircuits)
{
    AnalysisOptions options;
    options.verify = false; // claims face the engine cold below
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        Circuit c = randomCircuit(4, 24, 9000 + seed);
        AnalysisReport report = analyzeCircuit(c, options);
        reverifyExternally(c, report);
    }
}

TEST(AnalysisDifferentialTest, RandomCliffordCircuits)
{
    // Clifford circuits exercise the stabilizer domain: gates fixing
    // the reachable stabilizer state are flagged well beyond what
    // constant propagation sees.
    AnalysisOptions options;
    options.verify = false;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        Circuit c = randomCliffordCircuit(5, 30, 7000 + seed);
        AnalysisReport report = analyzeCircuit(c, options);
        reverifyExternally(c, report);
    }
}

TEST(AnalysisDifferentialTest, RandomDiagonalCircuits)
{
    // Diagonal circuits exercise the rotation-folding domain.
    AnalysisOptions options;
    options.verify = false;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        Circuit c = randomDiagonalCircuit(4, 24, 11000 + seed);
        AnalysisReport report = analyzeCircuit(c, options);
        reverifyExternally(c, report);
    }
}

TEST(AnalysisDifferentialTest, BuiltInCrossCheckNeverRefuted)
{
    // With verification on, a refuted claim (failedVerification > 0)
    // is an analyzer soundness bug. Sweep all three corpora.
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        for (int corpus = 0; corpus < 3; ++corpus) {
            Circuit c =
                corpus == 0   ? randomCircuit(4, 24, 1000 + seed)
                : corpus == 1 ? randomCliffordCircuit(5, 30, 2000 + seed)
                              : randomDiagonalCircuit(4, 24, 3000 + seed);
            AnalysisReport report = analyzeCircuit(c);
            EXPECT_EQ(report.failedVerification, 0)
                << "corpus " << corpus << " seed " << seed << "\n"
                << report.toString();
            for (const Diagnostic &d : report.diagnostics) {
                if (d.removable) {
                    EXPECT_TRUE(d.verified) << d.toString();
                }
            }
        }
    }
}

TEST(AnalysisDifferentialTest, TamperCorpusHasZeroFalsePositives)
{
    // Append a load-bearing entangler on two fresh ancilla qubits the
    // random prefix never touches: H(4) drives q4 off |0> and
    // CNOT(4, 5) creates fresh entanglement, so neither is removable
    // no matter what the prefix did. A removable claim on either would
    // be a false positive. (The built-in verifier would catch it too —
    // this pins the property structurally, without the engine.)
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Circuit prefix = randomCircuit(4, 16, 5000 + seed);
        Circuit c(6);
        for (const Gate &g : prefix.gates())
            c.add(g);
        c.add(makeH(4));
        const int planted_h = static_cast<int>(c.gates().size()) - 1;
        c.add(makeCnot(4, 5));
        const int planted = static_cast<int>(c.gates().size()) - 1;

        AnalysisReport report = analyzeCircuit(c);
        EXPECT_EQ(report.failedVerification, 0) << report.toString();
        for (const Diagnostic &d : report.diagnostics) {
            if (!d.removable)
                continue;
            for (int g : d.fix.removeGates) {
                EXPECT_NE(g, planted_h)
                    << "seed " << seed << ": " << d.toString();
                EXPECT_NE(g, planted)
                    << "seed " << seed << ": " << d.toString();
            }
        }
    }
}

TEST(AnalysisDifferentialTest, SuiteWorkloadsAnalyzeCleanly)
{
    // End-to-end through the compiler: both analysis stages verify on
    // representative paper workloads under two strategies.
    for (const char *name : {"MAXCUT-line", "sqrt-n3"}) {
        BenchmarkSpec spec = benchmarkByName(name);
        DeviceModel device =
            DeviceModel::gridFor(spec.circuit.numQubits());
        CompilerOptions options;
        options.analyze = true;
        Compiler compiler(device, options);
        for (Strategy strategy :
             {Strategy::kIsa, Strategy::kClsAggregation}) {
            CompilationResult result =
                compiler.compile(spec.circuit, strategy);
            ASSERT_EQ(result.analyses.size(), 2u) << name;
            for (const AnalysisReport &report : result.analyses) {
                EXPECT_TRUE(report.allVerified())
                    << name << "/" << strategyName(strategy) << "\n"
                    << report.toString();
            }
        }
    }
}

TEST(AnalysisDifferentialTest, SqrtWorkloadShowsDistinctKinds)
{
    // Acceptance criterion: at least three distinct diagnostic kinds
    // on a real suite workload.
    BenchmarkSpec spec = benchmarkByName("sqrt-n3");
    DeviceModel device = DeviceModel::gridFor(spec.circuit.numQubits());
    CompilerOptions options;
    options.analyze = true;
    Compiler compiler(device, options);
    CompilationResult result =
        compiler.compile(spec.circuit, Strategy::kIsa);
    ASSERT_EQ(result.analyses.size(), 2u);
    EXPECT_GE(result.analyses[0].distinctKinds(), 3)
        << result.analyses[0].toString();
    EXPECT_TRUE(result.analyses[0].allVerified());
    EXPECT_TRUE(result.analyses[1].allVerified());
}

} // namespace
} // namespace qaic
