/**
 * @file
 * Torn-write torture for the pulse-library on-disk format: every
 * truncation depth and a bit-flip sweep across the whole file must
 * yield a precise kDataLoss with quarantine — never a crash, never a
 * silently wrong load, never a poisoned subsequent save. Also pins the
 * v2 format guarantees: the checksum covers the header (a v1 gap) and
 * v1 legacy files are still read.
 */
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "oracle/pulselib.h"

namespace qaic {
namespace {

const char *kPath = "pulselib_torture.qplb";
const char *kQuarantine = "pulselib_torture.qplb.corrupt";

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool
fileExists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path, std::ios::binary));
}

/** FNV-1a mirror of the library's checksum, for crafting v1 files. */
std::uint64_t
fnv1a(const char *data, std::size_t size,
      std::uint64_t seed = 1469598103934665603ull)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/** A valid flushed library file's bytes (three entries, one rich). */
std::string
validLibraryBytes()
{
    std::remove(kPath);
    PulseLibrary lib(kPath);
    PulseLibraryEntry rich;
    rich.origin = "grape";
    rich.latencyNs = 17.5;
    rich.fidelity = 0.999;
    rich.iterations = 12;
    rich.shapeKey = "s2:cnot.0.1;";
    rich.waveforms = {{0.1, 0.2, 0.3}, {-0.1, 0.0, 0.1}};
    lib.insert("key-rich", std::move(rich));
    PulseLibraryEntry a, b;
    a.latencyNs = 9.5;
    b.origin = "analytic";
    b.latencyNs = 4.25;
    lib.insert("key-a", std::move(a));
    lib.insert("key-b", std::move(b));
    EXPECT_TRUE(lib.flush().isOk());
    std::string bytes = readFile(kPath);
    std::remove(kPath);
    return bytes;
}

class PulselibTortureTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        std::remove(kPath);
        std::remove(kQuarantine);
    }
    void TearDown() override
    {
        std::remove(kPath);
        std::remove(kQuarantine);
    }
};

/** Load @p bytes as the backing file; expect quarantine + kDataLoss,
 *  then a clean cold restart whose saves are readable again. */
void
expectQuarantined(const std::string &bytes, const std::string &what)
{
    writeFile(kPath, bytes);
    PulseLibrary fresh(kPath);
    Status loaded = fresh.load();
    ASSERT_EQ(loaded.code(), StatusCode::kDataLoss)
        << what << ": " << loaded.toString();
    EXPECT_EQ(fresh.size(), 0u) << what;
    EXPECT_FALSE(fileExists(kPath))
        << what << ": corrupt file must be moved aside";
    EXPECT_TRUE(fileExists(kQuarantine)) << what;
    EXPECT_EQ(fresh.load().code(), StatusCode::kNotFound) << what;
    std::remove(kQuarantine);
}

TEST_F(PulselibTortureTest, EveryTruncationDepthIsDetected)
{
    const std::string bytes = validLibraryBytes();
    ASSERT_GT(bytes.size(), 24u);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                     std::to_string(bytes.size()) + " bytes");
        expectQuarantined(bytes.substr(0, cut), "truncation");
    }

    // After any amount of torture, a fresh library on the same path
    // saves and reloads cleanly — torn writes never poison the future.
    PulseLibrary fresh(kPath);
    PulseLibraryEntry entry;
    entry.latencyNs = 1.0;
    fresh.insert("post-torture", std::move(entry));
    ASSERT_TRUE(fresh.flush().isOk());
    PulseLibrary check(kPath);
    ASSERT_TRUE(check.load().isOk());
    EXPECT_EQ(check.size(), 1u);
}

TEST_F(PulselibTortureTest, EveryBitFlipOffsetIsDetected)
{
    const std::string bytes = validLibraryBytes();
    // Flip one bit at every byte offset: magic, version, count,
    // checksum and body corruption must all be caught (the v2 checksum
    // covers the header fields, so no offset can slip through).
    for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
        for (unsigned char mask : {0x01, 0x80}) {
            SCOPED_TRACE("bit flip 0x" + std::to_string(mask) +
                         " at offset " + std::to_string(offset));
            std::string flipped = bytes;
            flipped[offset] =
                static_cast<char>(flipped[offset] ^ mask);
            expectQuarantined(flipped, "bit flip");
        }
    }
}

TEST_F(PulselibTortureTest, HeaderFlipFailsChecksumNotHeuristics)
{
    // The v2 fix over v1: flipping the entry-count field is caught by
    // the checksum itself, with a precise message, not by downstream
    // plausibility bounds.
    std::string bytes = validLibraryBytes();
    bytes[8] = static_cast<char>(bytes[8] ^ 0x01); // count LSB
    writeFile(kPath, bytes);
    Status loaded = PulseLibrary(kPath).load();
    ASSERT_EQ(loaded.code(), StatusCode::kDataLoss);
    EXPECT_NE(loaded.message().find("checksum mismatch"),
              std::string::npos)
        << loaded.toString();
}

TEST_F(PulselibTortureTest, LegacyV1FilesAreStillRead)
{
    // Craft a v1 file from a v2 one: version := 1, checksum := FNV-1a
    // of the body only (the v1 domain).
    std::string bytes = validLibraryBytes();
    ASSERT_GT(bytes.size(), 24u);
    const std::uint32_t v1 = 1;
    std::memcpy(&bytes[4], &v1, sizeof(v1));
    const std::uint64_t body_sum =
        fnv1a(bytes.data() + 24, bytes.size() - 24);
    std::memcpy(&bytes[16], &body_sum, sizeof(body_sum));

    writeFile(kPath, bytes);
    PulseLibrary lib(kPath);
    Status loaded = lib.load();
    ASSERT_TRUE(loaded.isOk())
        << "v1 files must remain readable: " << loaded.toString();
    EXPECT_EQ(lib.size(), 3u);
    auto rich = lib.peek("key-rich", "grape");
    ASSERT_TRUE(rich.has_value());
    EXPECT_EQ(rich->latencyNs, 17.5);
    EXPECT_TRUE(rich->hasWaveforms());

    // A re-flush upgrades the file to the current version in place.
    lib.insert("new-key", PulseLibraryEntry{});
    ASSERT_TRUE(lib.flush().isOk());
    std::string upgraded = readFile(kPath);
    std::uint32_t version = 0;
    std::memcpy(&version, upgraded.data() + 4, sizeof(version));
    EXPECT_EQ(version, PulseLibrary::kFormatVersion);

    // And a corrupted v1 body is still rejected by the v1 checksum.
    std::string broken = bytes;
    broken[broken.size() - 3] =
        static_cast<char>(broken[broken.size() - 3] ^ 0x10);
    expectQuarantined(broken, "v1 body flip");
}

} // namespace
} // namespace qaic
