/**
 * @file
 * Tests for the IR verifier (verify/lint.h) and the pass-contract layer
 * in Pipeline::compile: a seeded-mutation corpus (out-of-range qubit,
 * duplicate operands, bad arity, malformed aggregate, coupling-illegal
 * gate, inconsistent mapping, overlapping schedule slots) asserting each
 * corruption is rejected under the right invariant name, a clean-suite
 * sweep across all strategies and topologies with invariant checking
 * forced on, and death tests proving a corrupting pass is reported by
 * pass name + invariant.
 */
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "compiler/pipeline.h"
#include "device/topology.h"
#include "ir/gate.h"
#include "verify/lint.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"
#include "workloads/uccsd.h"

namespace qaic {
namespace {

// --- Invariant catalogue -------------------------------------------------

TEST(InvariantNameTest, NamesAreStableAndDistinct)
{
    const std::pair<CircuitInvariant, const char *> expected[] = {
        {CircuitInvariant::kQubitRange, "qubit-range"},
        {CircuitInvariant::kDistinctOperands, "distinct-operands"},
        {CircuitInvariant::kGateArity, "gate-arity"},
        {CircuitInvariant::kAggregateWellFormed, "aggregate-well-formed"},
        {CircuitInvariant::kFullyLowered, "fully-lowered"},
        {CircuitInvariant::kGdgAcyclic, "gdg-acyclic"},
        {CircuitInvariant::kMappingConsistent, "mapping-consistent"},
        {CircuitInvariant::kCouplingLegal, "coupling-legal"},
        {CircuitInvariant::kScheduleConsistent, "schedule-consistent"},
    };
    for (const auto &[invariant, name] : expected)
        EXPECT_EQ(invariantName(invariant), name);
}

TEST(InvariantNameTest, SetNamesJoinEveryMember)
{
    const InvariantSet set =
        invariantBit(CircuitInvariant::kQubitRange) |
        invariantBit(CircuitInvariant::kCouplingLegal);
    EXPECT_EQ(invariantSetNames(set), "qubit-range, coupling-legal");
    EXPECT_EQ(invariantSetNames(kNoInvariants), "");
}

// --- Seeded-mutation corpus ---------------------------------------------

TEST(LintTest, CleanWorkloadPasses)
{
    Circuit circuit = qaoaMaxcut(lineGraph(5));
    LintReport report = lintCircuit(
        circuit, kAllInvariants & ~invariantBit(
                     CircuitInvariant::kCouplingLegal));
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(LintTest, OutOfRangeQubitRejected)
{
    Circuit circuit = qaoaMaxcut(lineGraph(4));
    // Circuit::add validates, so seed the corruption directly.
    circuit.mutableGates()[2].qubits[0] = 97;
    LintReport report = lintCircuit(circuit);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.violates(CircuitInvariant::kQubitRange));
    bool found = false;
    for (const LintFinding &f : report.findings)
        if (f.invariant == CircuitInvariant::kQubitRange &&
            f.gateIndex == 2)
            found = true;
    EXPECT_TRUE(found) << report.toString();
}

TEST(LintTest, DuplicateOperandRejected)
{
    Circuit circuit(3);
    circuit.add(makeCnot(0, 1));
    circuit.mutableGates()[0].qubits[1] = 0; // cnot q0 q0
    LintReport report = lintCircuit(circuit);
    EXPECT_TRUE(report.violates(CircuitInvariant::kDistinctOperands));
}

TEST(LintTest, ArityMismatchRejected)
{
    Circuit circuit(3);
    circuit.add(makeCnot(0, 1));
    circuit.mutableGates()[0].qubits.pop_back(); // 1-operand cnot
    LintReport report = lintCircuit(circuit);
    EXPECT_TRUE(report.violates(CircuitInvariant::kGateArity));

    Circuit params(2);
    params.add(makeRz(0, 0.5));
    params.mutableGates()[0].params.clear(); // rz with no angle
    report = lintCircuit(params);
    EXPECT_TRUE(report.violates(CircuitInvariant::kGateArity));
}

TEST(LintTest, MalformedAggregateRejected)
{
    // A healthy aggregate passes...
    Circuit circuit(3);
    circuit.add(makeAggregate({makeCnot(0, 1), makeRz(1, 0.3)}, "test"));
    EXPECT_TRUE(lintCircuit(circuit).ok());

    // ...a support that is not the union of member supports fails...
    Circuit bad_support = circuit;
    bad_support.mutableGates()[0].qubits = {0, 2};
    LintReport report = lintCircuit(bad_support);
    EXPECT_TRUE(report.violates(CircuitInvariant::kAggregateWellFormed));

    // ...as does a missing provenance label...
    Circuit no_label(3);
    no_label.add(makeAggregate({makeCnot(0, 1)}, ""));
    report = lintCircuit(no_label);
    EXPECT_TRUE(report.violates(CircuitInvariant::kAggregateWellFormed));

    // ...and a payload-less aggregate shell.
    Circuit no_payload(3);
    Gate shell;
    shell.kind = GateKind::kAggregate;
    shell.qubits = {0, 1};
    no_payload.mutableGates().push_back(shell);
    report = lintCircuit(no_payload);
    EXPECT_TRUE(report.violates(CircuitInvariant::kAggregateWellFormed));

    // A corrupt member inside a valid shell is found too.
    Circuit bad_member(3);
    bad_member.add(
        makeAggregate({makeCnot(0, 1), makeRz(1, 0.3)}, "test"));
    auto payload = std::make_shared<AggregatePayload>(
        *bad_member.gates()[0].payload);
    payload->members[0].qubits[0] = 55;
    bad_member.mutableGates()[0].payload = std::move(payload);
    report = lintCircuit(bad_member);
    EXPECT_TRUE(report.violates(CircuitInvariant::kQubitRange));
}

TEST(LintTest, CouplingIllegalGateRejected)
{
    DeviceModel device = DeviceModel::line(4);
    Circuit circuit(4);
    circuit.add(makeCnot(0, 1)); // legal on the line
    circuit.add(makeCnot(0, 3)); // no coupler
    LintReport report;
    lintCoupling(circuit, device, &report);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.violates(CircuitInvariant::kCouplingLegal));
    EXPECT_EQ(report.findings[0].gateIndex, 1);
    EXPECT_EQ(invariantName(report.findings[0].invariant),
              "coupling-legal");

    // Aggregate members are held to the same standard.
    Circuit agg(4);
    agg.add(makeAggregate({makeCnot(0, 3)}, "bad"));
    report = LintReport();
    lintCoupling(agg, device, &report);
    EXPECT_TRUE(report.violates(CircuitInvariant::kCouplingLegal));
}

TEST(LintTest, InconsistentMappingRejected)
{
    DeviceModel device = DeviceModel::line(4);
    RoutingResult routing;
    routing.initialMapping = {0, 1, 2, 3};
    routing.finalMapping = {0, 1, 2, 2}; // two logicals on one physical
    LintReport report;
    lintMapping(routing, device, &report);
    EXPECT_TRUE(report.violates(CircuitInvariant::kMappingConsistent));

    routing.finalMapping = {0, 1, 2, 9}; // outside the register
    report = LintReport();
    lintMapping(routing, device, &report);
    EXPECT_TRUE(report.violates(CircuitInvariant::kMappingConsistent));
}

TEST(LintTest, OverlappingScheduleSlotsRejected)
{
    DeviceModel device = DeviceModel::line(3);
    Circuit physical(3);
    physical.add(makeCnot(0, 1));
    physical.add(makeCnot(1, 2));

    Schedule schedule;
    schedule.ops.push_back({physical.gates()[0], 0.0, 50.0});
    schedule.ops.push_back({physical.gates()[1], 25.0, 50.0}); // overlaps q1
    LintReport report;
    lintSchedule(schedule, physical, device, &report);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.violates(CircuitInvariant::kScheduleConsistent));

    // Serialized, the same ops are clean.
    schedule.ops[1].start = 50.0;
    report = LintReport();
    lintSchedule(schedule, physical, device, &report);
    EXPECT_TRUE(report.ok()) << report.toString();

    // A schedule that lost an op is inconsistent even without overlap.
    schedule.ops.pop_back();
    report = LintReport();
    lintSchedule(schedule, physical, device, &report);
    EXPECT_TRUE(report.violates(CircuitInvariant::kScheduleConsistent));
}

// --- Clean-suite sweep ---------------------------------------------------

/** Every strategy on every topology compiles with invariant checking
 *  forced on; any pass leaving the IR illegal would abort the run. */
TEST(LintSuiteTest, AllStrategiesAllTopologiesPassChecked)
{
    const Circuit circuits[] = {qaoaMaxcut(lineGraph(5)), uccsdAnsatz(4)};
    CompilerOptions options;
    options.checkInvariants = true;
    for (const Circuit &circuit : circuits) {
        for (Topology topology : kAllTopologies) {
            DeviceModel device = deviceForTopology(
                topology, circuit.numQubits(), options.seed);
            for (Strategy strategy : kAllStrategies) {
                Pipeline pipeline = Pipeline::forStrategy(strategy);
                CompilationContext context(device, options);
                CompilationResult result =
                    pipeline.compile(circuit, context).value();
                EXPECT_GT(result.latencyNs, 0.0)
                    << strategyName(strategy) << " on "
                    << topologyName(topology);
            }
        }
    }
}

// --- Pass-contract enforcement ------------------------------------------

/** A pass that corrupts the working circuit: the post-pass verification
 *  must name this pass and the violated invariant. */
class CorruptingPass : public Pass
{
  public:
    std::string name() const override { return "corruptor"; }

    Status
    run(CompilationContext &context) override
    {
        context.working.mutableGates()[0].qubits[0] = 99;
        return Status();
    }
};

/** A pass that double-books a qubit in the final schedule. */
class ScheduleCorruptingPass : public Pass
{
  public:
    std::string name() const override { return "schedule-corruptor"; }

    Status
    run(CompilationContext &context) override
    {
        // Collapse every start to 0: any two ops sharing a qubit now
        // overlap.
        for (ScheduledOp &op : context.schedule.ops)
            op.start = 0.0;
        return Status();
    }
};

TEST(LintDeathTest, CorruptedCircuitReportsPassAndInvariant)
{
    Circuit circuit = qaoaMaxcut(lineGraph(4));
    DeviceModel device = DeviceModel::gridFor(4);
    CompilerOptions options;
    options.checkInvariants = true;

    Pipeline pipeline;
    pipeline.emplace<FrontendLoweringPass>();
    pipeline.emplace<MappingPass>();
    pipeline.emplace<CorruptingPass>();
    pipeline.emplace<AggregationBackendPass>();
    pipeline.emplace<AsapSchedulePass>();
    CompilationContext context(device, options);
    EXPECT_DEATH(pipeline.compile(circuit, context),
                 "invariant violation after pass 'corruptor'(.|\n)*"
                 "qubit-range");
}

TEST(LintDeathTest, CorruptedScheduleReportsPassAndInvariant)
{
    Circuit circuit = qaoaMaxcut(lineGraph(4));
    DeviceModel device = DeviceModel::gridFor(4);
    CompilerOptions options;
    options.checkInvariants = true;

    Pipeline pipeline;
    pipeline.emplace<FrontendLoweringPass>();
    pipeline.emplace<MappingPass>();
    pipeline.emplace<GateBackendPass>();
    pipeline.emplace<AsapSchedulePass>();
    pipeline.emplace<ScheduleCorruptingPass>();
    CompilationContext context(device, options);
    EXPECT_DEATH(pipeline.compile(circuit, context),
                 "invariant violation after pass 'schedule-corruptor'"
                 "(.|\n)*schedule-consistent");
}

TEST(LintTest, CorruptedInputCircuitRejectedBeforeAnyPass)
{
    // The input circuit is caller data, not a pass artifact, so a
    // violation in it is a recoverable kInvalidArgument — and the
    // structural lint runs even with checkInvariants off.
    Circuit circuit = qaoaMaxcut(lineGraph(4));
    circuit.mutableGates()[0].qubits[0] = 99;
    DeviceModel device = DeviceModel::gridFor(4);
    for (bool check : {true, false}) {
        CompilerOptions options;
        options.checkInvariants = check;
        Pipeline pipeline = Pipeline::forStrategy(Strategy::kIsa);
        CompilationContext context(device, options);
        StatusOr<CompilationResult> r = pipeline.compile(circuit, context);
        ASSERT_FALSE(r.isOk()) << "checkInvariants=" << check;
        EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
        EXPECT_NE(r.status().message().find("input circuit"),
                  std::string::npos)
            << r.status().toString();
        EXPECT_NE(r.status().message().find("qubit-range"),
                  std::string::npos)
            << r.status().toString();
    }
}

} // namespace
} // namespace qaic
