/**
 * @file
 * Concurrency soak for the compilation service.
 *
 * N client threads hammer one CompileService with a mixed workload
 * while the background promoter swaps artifacts underneath them. The
 * assertions are the service's concurrency contract
 * (src/service/service.h):
 *
 *  - determinism per fingerprint within a tier: every reply for one
 *    fingerprint at one tier reports identical metrics, regardless of
 *    which worker served it or whether it raced a cold compile;
 *  - no torn artifact swaps: a tier-1 reply is *all* tier-1 — its
 *    latency obeys the never-worse guard against the tier-0 answer
 *    that every tier-0 reply for the same fingerprint reported;
 *  - admission control under overload: submissions are either admitted
 *    (answered exactly once) or rejected with kUnavailable — nothing
 *    is dropped silently;
 *  - clean shutdown drains the queue: every admitted request is
 *    answered before shutdown() returns;
 *  - bounded steady-state memory: a stream of unique circuits churns
 *    the artifact cache within cacheCapacity (hot/promoted entries
 *    preferentially retained) instead of growing it without bound.
 *
 * CI runs the whole ctest suite under TSan (alongside tsan_soak_test),
 * which turns any data race in the queue/cache/promoter machinery into
 * a test failure.
 */
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/protocol.h"
#include "service/service.h"

namespace qaic::service {
namespace {

/** Tolerance for latency comparisons across replies (exact doubles are
 *  expected — the compile is deterministic — but the guard itself
 *  allows rounding-level slack). */
constexpr double kEps = 1e-9;

std::string
workloadQasm(int which)
{
    switch (which % 6) {
    case 0:
        return "qubits 2\nh q0\ncnot q0 q1\n";
    case 1:
        return "qubits 3\nh q0\ncnot q0 q1\ncnot q1 q2\n";
    case 2:
        return "qubits 4\nh q0\ncnot q0 q1\ncnot q1 q2\ncnot q2 q3\n"
               "t q3\ncnot q2 q3\ncnot q1 q2\ncnot q0 q1\nh q0\n";
    case 3:
        return "qubits 3\nx q0\ny q1\nz q2\ncnot q0 q2\ncnot q1 q2\n";
    case 4:
        return "qubits 4\nh q0\nh q1\nh q2\nh q3\ncz q0 q1\ncz q1 q2\n"
               "cz q2 q3\ncz q0 q3\n";
    default:
        return "qubits 2\nrx(0.25) q0\nrz(1.5) q1\ncnot q0 q1\n"
               "rx(0.25) q0\n";
    }
}

CompileRequest
workloadRequest(int which, const std::string &id)
{
    CompileRequest request;
    request.id = id;
    request.qasm = workloadQasm(which);
    request.topology = which % 2 ? Topology::kLine : Topology::kGrid;
    request.width = 4;
    return request;
}

struct ReplyDigest
{
    int tier = 0;
    double latencyNs = 0.0;
    double tier0LatencyNs = 0.0;
    int swaps = 0;
    int instructions = 0;
    int aggregates = 0;
    int maxWidth = 0;
};

TEST(ServiceSoakTest, ConcurrentClientsSeeDeterministicTieredReplies)
{
    ServiceOptions options;
    options.workers = 4;
    options.queueCapacity = 1024; // no rejections in this scenario
    options.promoteAfter = 2;     // promotions fire mid-soak
    options.tier1Grape = false;   // analytic pricing keeps TSan runs fast
    options.tier1Optimize = true;
    CompileService service(options);

    constexpr int kThreads = 8;
    constexpr int kPerThread = 36;

    std::mutex collected_mutex;
    std::map<std::string, std::map<int, std::vector<ReplyDigest>>>
        by_fingerprint_tier;
    std::atomic<int> failures{0};

    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // Every thread walks the workload pool in a different
                // order so cold compiles, cache hits and promotions
                // interleave differently on every shard.
                int which = (t * 7 + i) % 6;
                ServiceReply reply = service.compileSync(workloadRequest(
                    which, "t" + std::to_string(t) + "-" +
                               std::to_string(i)));
                if (!reply.ok) {
                    ++failures;
                    continue;
                }
                ReplyDigest digest{reply.tier,         reply.latencyNs,
                                   reply.tier0LatencyNs, reply.swaps,
                                   reply.instructions, reply.aggregates,
                                   reply.maxWidth};
                std::lock_guard<std::mutex> lock(collected_mutex);
                by_fingerprint_tier[reply.fingerprint][reply.tier]
                    .push_back(digest);
            }
        });
    }
    for (std::thread &client : clients)
        client.join();

    EXPECT_EQ(failures.load(), 0)
        << "soak workload must compile cleanly";
    EXPECT_EQ(by_fingerprint_tier.size(), 6u)
        << "one fingerprint per distinct workload";

    for (const auto &[fingerprint, tiers] : by_fingerprint_tier) {
        SCOPED_TRACE("fingerprint " + fingerprint);
        // Determinism within a tier: all replies bitwise-identical in
        // their metrics. A torn artifact swap would break this — a
        // reader would see a mix of old and new fields.
        for (const auto &[tier, replies] : tiers) {
            SCOPED_TRACE("tier " + std::to_string(tier));
            const ReplyDigest &first = replies.front();
            for (const ReplyDigest &digest : replies) {
                EXPECT_EQ(digest.latencyNs, first.latencyNs);
                EXPECT_EQ(digest.tier0LatencyNs, first.tier0LatencyNs);
                EXPECT_EQ(digest.swaps, first.swaps);
                EXPECT_EQ(digest.instructions, first.instructions);
                EXPECT_EQ(digest.aggregates, first.aggregates);
                EXPECT_EQ(digest.maxWidth, first.maxWidth);
            }
        }
        // Cross-tier never-worse guard: tier-1 latency is bounded by
        // the tier-0 answer the promotion replaced, and that answer is
        // exactly what tier-0 replies reported.
        auto tier0 = tiers.find(0);
        auto tier1 = tiers.find(1);
        if (tier1 != tiers.end()) {
            const ReplyDigest &promoted = tier1->second.front();
            EXPECT_LE(promoted.latencyNs,
                      promoted.tier0LatencyNs + kEps);
            if (tier0 != tiers.end())
                EXPECT_EQ(promoted.tier0LatencyNs,
                          tier0->second.front().latencyNs);
        }
    }

    // With promoteAfter=2 and 48 requests per workload, every
    // fingerprint must have been promoted (or guard-tripped) by the
    // time the promoter goes idle.
    service.waitForPromotionsIdle();
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(stats.compileErrors, 0u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_GE(stats.promotions + stats.guardTrips, 1u)
        << "the soak must observe at least one promotion attempt";
    // Accounting invariant: every admitted request was either served
    // from cache or compiled at tier 0.
    EXPECT_EQ(stats.requests, stats.cacheHits + stats.tier0Compiles);
    EXPECT_EQ(stats.artifacts, 6u);
}

TEST(ServiceSoakTest, OverloadIsRejectedNeverDropped)
{
    ServiceOptions options;
    options.workers = 1;
    options.queueCapacity = 4; // tiny: force admission-control pushback
    options.enablePromotion = false;
    CompileService service(options);

    constexpr int kThreads = 6;
    constexpr int kPerThread = 50;
    std::atomic<int> answered{0};
    std::atomic<int> rejected{0};

    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                Status admitted = service.submitAsync(
                    workloadRequest(i, "o" + std::to_string(t)),
                    [&](const ServiceReply &reply) {
                        EXPECT_TRUE(reply.ok) << reply.toJson();
                        ++answered;
                    });
                if (!admitted.isOk()) {
                    EXPECT_EQ(admitted.code(), StatusCode::kUnavailable);
                    ++rejected;
                }
            }
        });
    }
    for (std::thread &client : clients)
        client.join();

    // shutdown() drains: every admitted request gets its callback
    // before this returns.
    service.shutdown();
    EXPECT_EQ(answered.load() + rejected.load(), kThreads * kPerThread)
        << "no submission may vanish without an answer or a rejection";
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(answered.load()));
    EXPECT_EQ(stats.rejected,
              static_cast<std::uint64_t>(rejected.load()));
    EXPECT_EQ(stats.queueDepth, 0u) << "shutdown must drain the queue";
    EXPECT_LE(stats.peakQueueDepth, options.queueCapacity);
}

TEST(ServiceSoakTest, ArtifactCacheStaysBoundedUnderUniqueTraffic)
{
    // Admission control bounds in-flight work; cacheCapacity bounds
    // steady-state memory. A client streaming trivially-unique circuits
    // (the cheapest cache-filling attack) must churn the cache within
    // its cap while a hot, promoted fingerprint survives eviction —
    // tier-1 artifacts are preferentially retained, then most-hit.
    ServiceOptions options;
    options.workers = 2;
    options.queueCapacity = 1024;
    options.cacheCapacity = 16; // tiny: force eviction pressure
    options.promoteAfter = 2;
    options.tier1Grape = false;
    CompileService service(options);

    const CompileRequest hot = workloadRequest(0, "hot");
    std::string hot_fingerprint;

    // Warm the hot fingerprint past promoteAfter *before* the unique
    // stream starts, so its hit count strictly dominates every
    // single-hit unique entry — its survival is deterministic, not a
    // tie-break.
    for (int i = 0; i < 3; ++i) {
        ServiceReply reply = service.compileSync(hot);
        ASSERT_TRUE(reply.ok) << reply.toJson();
        hot_fingerprint = reply.fingerprint;
    }

    for (int i = 0; i < 200; ++i) {
        // Every 5th request re-touches the hot fingerprint; the rest
        // are unique (a distinct rz angle changes the canonical key).
        if (i % 5 == 0) {
            ServiceReply reply = service.compileSync(hot);
            ASSERT_TRUE(reply.ok) << reply.toJson();
            EXPECT_EQ(reply.fingerprint, hot_fingerprint);
            continue;
        }
        CompileRequest unique = workloadRequest(1, "u" + std::to_string(i));
        unique.qasm += "rz(0." + std::to_string(1000 + i) + ") q0\n";
        ServiceReply reply = service.compileSync(unique);
        ASSERT_TRUE(reply.ok) << reply.toJson();
    }
    service.waitForPromotionsIdle();

    ServiceStats stats = service.stats();
    EXPECT_LE(stats.artifacts, options.cacheCapacity)
        << "unique traffic must evict, not grow the cache unboundedly";
    EXPECT_GT(stats.evictions, 0u);

    // The hot artifact outlived ~160 unique insertions: still cached,
    // and promoted (tier >= 1) since it was requested 40 times with
    // promoteAfter=2.
    ServiceReply final_hot = service.compileSync(hot);
    ASSERT_TRUE(final_hot.ok) << final_hot.toJson();
    EXPECT_TRUE(final_hot.cached)
        << "the hot fingerprint must not have been evicted";
    EXPECT_EQ(final_hot.fingerprint, hot_fingerprint);
    EXPECT_GE(final_hot.tier, 1)
        << "eviction must prefer tier-0 victims over the promotion";
}

TEST(ServiceSoakTest, ShutdownDuringTrafficAnswersEveryAdmittedRequest)
{
    ServiceOptions options;
    options.workers = 2;
    options.queueCapacity = 256;
    options.promoteAfter = 1;
    options.tier1Grape = false;
    CompileService service(options);

    std::atomic<int> answered{0};
    std::atomic<int> admitted_count{0};
    std::atomic<bool> stop{false};

    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < 100 && !stop.load(); ++i) {
                Status admitted = service.submitAsync(
                    workloadRequest(t + i, "s" + std::to_string(i)),
                    [&](const ServiceReply &) { ++answered; });
                if (admitted.isOk())
                    ++admitted_count;
            }
        });
    }
    // Shut down in the middle of the storm: in-flight submissions race
    // the admission gate; each one either lands (and must be answered)
    // or is rejected with kUnavailable.
    service.shutdown();
    stop.store(true);
    for (std::thread &client : clients)
        client.join();

    EXPECT_EQ(answered.load(), admitted_count.load())
        << "shutdown returned before draining the request queue";

    // After shutdown everything is rejected, nothing deadlocks.
    Status late = service.submitAsync(workloadRequest(0, "late"),
                                      [](const ServiceReply &) {});
    EXPECT_EQ(late.code(), StatusCode::kUnavailable);
    ServiceReply late_sync = service.compileSync(workloadRequest(1, "l2"));
    EXPECT_FALSE(late_sync.ok);
    EXPECT_EQ(late_sync.error.code(), StatusCode::kUnavailable);
}

} // namespace
} // namespace qaic::service
