/**
 * @file
 * Cross-checker differential tests for the layered equivalence engine:
 * on ~200 seeded circuits, every checker that claims completeness on a
 * domain (exact unitary, diagonal propagator, Clifford tableau) must
 * agree with dense random-state simulation, metamorphic transforms
 * (adjoint append, commuting reorders, permutation conjugation) must
 * pass every applicable checker, and mutations must never slip
 * through. The symbolic routed check is cross-validated against the
 * dense embed check on the router fuzz corpus.
 */
#include <gtest/gtest.h>

#include "compiler/decompose.h"
#include "device/topology.h"
#include "mapping/mapping.h"
#include "testing/equivalence.h"
#include "testing/generators.h"
#include "verify/classify.h"
#include "verify/verify.h"

namespace qaic {
namespace {

using testing::appendAdjoint;
using testing::commuteAdjacentPairs;
using testing::conjugateByRandomPermutation;
using testing::mutateOneGate;
using testing::randomCircuit;
using testing::randomCliffordCircuit;
using testing::randomDiagonalCircuit;
using testing::randomPauliRotationCircuit;

EquivalenceOptions
forced(EquivalenceMethod method, double tol = 1e-6)
{
    EquivalenceOptions options;
    options.force = method;
    options.tol = tol;
    return options;
}

TEST(EquivalenceEngineTest, CliffordCheckerAgreesWithDense)
{
    for (int seed = 0; seed < 40; ++seed) {
        const int n = 3 + seed % 4;
        Circuit c = randomCliffordCircuit(n, 25, 5000 + seed);
        Circuit reordered = commuteAdjacentPairs(c, 60 + seed);
        Circuit shuffled = conjugateByRandomPermutation(c, 70 + seed);
        for (const Circuit *other : {&reordered, &shuffled}) {
            EXPECT_TRUE(analyzeCircuitsEquivalent(
                            c, *other,
                            forced(EquivalenceMethod::kCliffordTableau))
                            .equivalent())
                << "seed " << seed;
            EXPECT_TRUE(analyzeCircuitsEquivalent(
                            c, *other,
                            forced(EquivalenceMethod::kDenseSampling))
                            .equivalent())
                << "seed " << seed;
        }
        // Mutations: the complete checkers must agree with dense.
        Circuit bad = mutateOneGate(c, 80 + seed);
        const bool dense_same =
            analyzeCircuitsEquivalent(
                c, bad, forced(EquivalenceMethod::kDenseSampling))
                .equivalent();
        const auto tableau = analyzeCircuitsEquivalent(
            c, bad, forced(EquivalenceMethod::kCliffordTableau));
        if (tableau.verdict != EquivalenceVerdict::kInconclusive) {
            EXPECT_EQ(tableau.equivalent(), dense_same) << "seed " << seed;
        }
    }
}

TEST(EquivalenceEngineTest, DiagonalPropagatorAgreesWithDense)
{
    for (int seed = 0; seed < 40; ++seed) {
        const int n = 3 + seed % 4;
        Circuit c = randomDiagonalCircuit(n, 30, 6000 + seed);
        Circuit reordered = commuteAdjacentPairs(c, 61 + seed);
        Circuit shuffled = conjugateByRandomPermutation(c, 71 + seed);
        for (const Circuit *other : {&reordered, &shuffled}) {
            EXPECT_TRUE(
                analyzeCircuitsEquivalent(
                    c, *other,
                    forced(EquivalenceMethod::kDiagonalPropagator))
                    .equivalent())
                << "seed " << seed;
            EXPECT_TRUE(analyzeCircuitsEquivalent(
                            c, *other,
                            forced(EquivalenceMethod::kDenseSampling))
                            .equivalent())
                << "seed " << seed;
        }
        Circuit bad = mutateOneGate(c, 81 + seed);
        const bool dense_same =
            analyzeCircuitsEquivalent(
                c, bad, forced(EquivalenceMethod::kDenseSampling))
                .equivalent();
        EXPECT_EQ(analyzeCircuitsEquivalent(
                      c, bad,
                      forced(EquivalenceMethod::kDiagonalPropagator))
                      .equivalent(),
                  dense_same)
            << "seed " << seed;
    }
}

TEST(EquivalenceEngineTest, RotationFormSoundOnMixedCircuits)
{
    for (int seed = 0; seed < 60; ++seed) {
        const int n = 3 + seed % 4;
        Circuit c = randomPauliRotationCircuit(n, 25, 7000 + seed);
        Circuit reordered = commuteAdjacentPairs(c, 62 + seed);
        Circuit shuffled = conjugateByRandomPermutation(c, 72 + seed);
        for (const Circuit *other : {&reordered, &shuffled}) {
            EXPECT_TRUE(
                analyzeCircuitsEquivalent(
                    c, *other,
                    forced(EquivalenceMethod::kPauliRotationForm))
                    .equivalent())
                << "seed " << seed;
            EXPECT_TRUE(analyzeCircuitsEquivalent(
                            c, *other,
                            forced(EquivalenceMethod::kDenseSampling))
                            .equivalent())
                << "seed " << seed;
        }
        // Soundness: a mutated circuit must never be claimed
        // equivalent (inconclusive is acceptable, kEquivalent is not).
        Circuit bad = mutateOneGate(c, 82 + seed);
        ASSERT_FALSE(
            analyzeCircuitsEquivalent(
                c, bad, forced(EquivalenceMethod::kDenseSampling))
                .equivalent())
            << "seed " << seed;
        EXPECT_FALSE(
            analyzeCircuitsEquivalent(
                c, bad, forced(EquivalenceMethod::kPauliRotationForm))
                .equivalent())
            << "seed " << seed;
    }
}

TEST(EquivalenceEngineTest, AdjointAppendCollapsesToIdentity)
{
    for (int seed = 0; seed < 20; ++seed) {
        const int n = 3 + seed % 3;
        Circuit c = randomCircuit(n, 20, 7500 + seed);
        Circuit empty(n);
        EXPECT_TRUE(analyzeCircuitsEquivalent(
                        appendAdjoint(c), empty,
                        forced(EquivalenceMethod::kPauliRotationForm))
                        .equivalent())
            << "seed " << seed;
    }
}

TEST(EquivalenceEngineTest, AutoDispatchPicksTheCheapestSoundChecker)
{
    // Small registers: exact unitary.
    Circuit small = randomCircuit(4, 15, 1);
    EXPECT_EQ(analyzeCircuitsEquivalent(small, small).method,
              EquivalenceMethod::kExactUnitary);
    // Wide diagonal structure: the phase propagator.
    Circuit diag = randomDiagonalCircuit(12, 40, 2);
    EXPECT_EQ(analyzeCircuitsEquivalent(diag, diag).method,
              EquivalenceMethod::kDiagonalPropagator);
    // Wide Clifford: the stabilizer tableau.
    Circuit cliff = randomCliffordCircuit(12, 40, 3);
    EXPECT_EQ(analyzeCircuitsEquivalent(cliff, cliff).method,
              EquivalenceMethod::kCliffordTableau);
    // Wide mixed: the rotation form.
    Circuit mixed = randomPauliRotationCircuit(12, 40, 4);
    EXPECT_EQ(analyzeCircuitsEquivalent(mixed, mixed).method,
              EquivalenceMethod::kPauliRotationForm);
}

TEST(EquivalenceEngineTest, ToffoliExpansionMatchesDecomposition)
{
    Circuit c(4);
    c.add(makeH(0));
    c.add(makeCcx(0, 1, 2));
    c.add(makeRz(3, 0.4));
    c.add(makeCcx(1, 2, 3));
    Circuit lowered = decomposeCcx(c);
    EXPECT_TRUE(analyzeCircuitsEquivalent(
                    c, lowered,
                    forced(EquivalenceMethod::kPauliRotationForm))
                    .equivalent());
    EXPECT_TRUE(analyzeCircuitsEquivalent(
                    c, lowered, forced(EquivalenceMethod::kExactUnitary))
                    .equivalent());
}

TEST(EquivalenceEngineTest, DiagonalAggregatesStayInDomain)
{
    // An aggregated diagonal block must flow through the propagator
    // exactly like its member list.
    Circuit flat = randomDiagonalCircuit(6, 18, 99);
    Circuit packed(6);
    std::vector<Gate> chunk;
    for (const Gate &g : flat.gates()) {
        chunk.push_back(g);
        if (chunk.size() == 6) {
            packed.add(makeAggregate(chunk, "blk", /*eager=*/0));
            chunk.clear();
        }
    }
    for (const Gate &g : chunk)
        packed.add(g);
    EXPECT_TRUE(classifyCircuit(packed).diagonalAffine);
    EXPECT_TRUE(analyzeCircuitsEquivalent(
                    flat, packed,
                    forced(EquivalenceMethod::kDiagonalPropagator))
                    .equivalent());
}

TEST(EquivalenceEngineTest, SymbolicRoutedCheckMatchesDenseOnFuzzCorpus)
{
    for (int seed = 0; seed < 40; ++seed) {
        const int width = 3 + seed % 4;
        Circuit c = randomCircuit(width, 14 + seed % 9, 9000 + seed);
        for (Topology topology : {Topology::kGrid, Topology::kHeavyHex}) {
            DeviceModel device =
                deviceForTopology(topology, c.numQubits(), 11 + seed);
            auto placement = initialPlacement(c, device);
            for (RouterKind router :
                 {RouterKind::kBaseline, RouterKind::kLookahead}) {
                RoutingOptions options;
                options.router = router;
                RoutingResult routing =
                    routeOnDevice(c, device, placement, options)
                        .value();
                const auto symbolic = analyzeRoutedEquivalent(
                    c, routing, device.numQubits(),
                    forced(EquivalenceMethod::kPauliRotationForm));
                EXPECT_TRUE(symbolic.equivalent())
                    << "seed " << seed << " "
                    << topologyName(topology) << "/"
                    << routerName(router) << ": " << symbolic.note;
                EXPECT_TRUE(analyzeRoutedEquivalent(
                                c, routing, device.numQubits(),
                                forced(EquivalenceMethod::kDenseSampling))
                                .equivalent())
                    << "seed " << seed;
            }
        }
    }
}

TEST(EquivalenceEngineTest, SymbolicRoutedCheckRejectsTampering)
{
    Circuit c = randomCircuit(5, 18, 12345);
    DeviceModel device = deviceForTopology(Topology::kGrid, 5);
    auto placement = initialPlacement(c, device);
    RoutingResult routing =
        routeOnDevice(c, device, placement).value();

    // Corrupt the stream with one stray Clifford gate.
    RoutingResult corrupted = routing;
    corrupted.physical.add(makeX(0));
    EXPECT_FALSE(analyzeRoutedEquivalent(
                     c, corrupted, device.numQubits(),
                     forced(EquivalenceMethod::kPauliRotationForm))
                     .equivalent());
    EXPECT_FALSE(analyzeRoutedEquivalent(
                     c, corrupted, device.numQubits(),
                     forced(EquivalenceMethod::kDenseSampling))
                     .equivalent());

    // Corrupt an angle.
    RoutingResult detuned = routing;
    for (Gate &g : detuned.physical.mutableGates())
        if (!g.params.empty()) {
            g.params[0] += 0.25;
            break;
        }
    EXPECT_FALSE(analyzeRoutedEquivalent(
                     c, detuned, device.numQubits(),
                     forced(EquivalenceMethod::kPauliRotationForm))
                     .equivalent());

    // Corrupt the final mapping.
    RoutingResult remapped = routing;
    std::swap(remapped.finalMapping[0], remapped.finalMapping[1]);
    EXPECT_FALSE(analyzeRoutedEquivalent(
                     c, remapped, device.numQubits(),
                     forced(EquivalenceMethod::kPauliRotationForm))
                     .equivalent());
}

} // namespace
} // namespace qaic
