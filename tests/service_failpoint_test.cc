/**
 * @file
 * Fault-injection sweep of the service-layer failpoints.
 *
 * PR 7's failpoint registry gains three service sites
 * (src/service/service.cc); this suite arms each one and holds the
 * service to its degradation contract:
 *
 *  - "service_queue_overflow": admission control rejects as if the
 *    queue were full — the caller gets a structured kUnavailable
 *    reply, the rejection is counted, and the service keeps serving
 *    once the fault clears;
 *  - "service_promotion_fail": the tier-1 promotion dies just before
 *    the artifact swap — the tier-0 artifact keeps serving untouched
 *    and the failure is counted, invisible to clients;
 *  - "service_flush_during_request": a pulse-library flush is forced
 *    while a request is in flight — a *successful* flush is invisible,
 *    and a *failing* flush (stacked with the PR 7 "pulselib_rename_fail"
 *    site) produces a reply that is ok **with the degraded flag**, not
 *    an error: the compile itself succeeded, only persistence suffered.
 *
 * The generic sweep in failpoint_test.cc deliberately skips service_*
 * names and defers to this file, whose scenarios actually route
 * through the service.
 */
#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "service/protocol.h"
#include "service/service.h"
#include "util/failpoint.h"

namespace qaic::service {
namespace {

CompileRequest
smallRequest(const std::string &id)
{
    CompileRequest request;
    request.id = id;
    request.qasm = "qubits 3\nh q0\ncnot q0 q1\ncnot q1 q2\n";
    request.topology = Topology::kLine;
    request.width = 4;
    return request;
}

FailPoint *
findFailpoint(const std::string &name)
{
    for (FailPoint *fp : failpoints::registered())
        if (fp->name() == name)
            return fp;
    return nullptr;
}

class ServiceFailPointTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoints::resetAll(); }
    void TearDown() override { failpoints::resetAll(); }
};

TEST_F(ServiceFailPointTest, ServiceSitesAreRegistered)
{
    std::set<std::string> names;
    for (FailPoint *fp : failpoints::registered())
        names.insert(fp->name());
    for (const char *required :
         {"service_queue_overflow", "service_promotion_fail",
          "service_flush_during_request"}) {
        EXPECT_TRUE(names.count(required))
            << "missing planted service failpoint " << required;
    }
}

TEST_F(ServiceFailPointTest, QueueOverflowRejectsStructuredAndRecovers)
{
    ServiceOptions options;
    options.workers = 1;
    options.enablePromotion = false;
    CompileService service(options);

    FailPoint *overflow = findFailpoint("service_queue_overflow");
    ASSERT_NE(overflow, nullptr);
    overflow->activateAlways();

    ServiceReply rejected = service.compileSync(smallRequest("r1"));
    EXPECT_GE(overflow->fires(), 1u);
    EXPECT_FALSE(rejected.ok);
    EXPECT_EQ(rejected.error.code(), StatusCode::kUnavailable);
    EXPECT_EQ(rejected.id, "r1") << "rejections still correlate by id";
    EXPECT_EQ(service.stats().rejected, 1u);
    EXPECT_EQ(service.stats().requests, 0u)
        << "a rejected request was never admitted";

    // The reply renders as a structured error frame, not a crash.
    std::string reply_json = rejected.toJson();
    StatusOr<JsonValue> parsed = parseJson(reply_json);
    ASSERT_TRUE(parsed.isOk()) << reply_json;
    const JsonValue *error = parsed.value().find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->find("code")->string, "UNAVAILABLE");

    // Fault clears -> service recovers with no restart.
    failpoints::resetAll();
    ServiceReply served = service.compileSync(smallRequest("r2"));
    EXPECT_TRUE(served.ok) << served.toJson();
}

TEST_F(ServiceFailPointTest, PromotionFailureKeepsTier0ArtifactServing)
{
    ServiceOptions options;
    options.workers = 1;
    options.promoteAfter = 1;
    options.tier1Grape = false;
    CompileService service(options);

    FailPoint *promotion = findFailpoint("service_promotion_fail");
    ASSERT_NE(promotion, nullptr);
    promotion->activateAlways();

    ServiceReply first = service.compileSync(smallRequest("p1"));
    ASSERT_TRUE(first.ok) << first.toJson();
    EXPECT_EQ(first.tier, 0);
    service.waitForPromotionsIdle();

    EXPECT_GE(promotion->fires(), 1u)
        << "the promotion must have been attempted and injected";
    ServiceStats stats = service.stats();
    EXPECT_GE(stats.promotionFailures, 1u);
    EXPECT_EQ(stats.promotions, 0u);

    // The tier-0 artifact survived the mid-swap death bit-for-bit.
    ServiceReply second = service.compileSync(smallRequest("p2"));
    ASSERT_TRUE(second.ok) << second.toJson();
    EXPECT_EQ(second.tier, 0) << "failed promotion must not swap";
    EXPECT_TRUE(second.cached);
    EXPECT_EQ(second.latencyNs, first.latencyNs);
    EXPECT_EQ(second.fingerprint, first.fingerprint);

    // Fault clears -> a failed promotion is retryable: the next
    // request re-queues it and the swap lands (guard permitting).
    failpoints::resetAll();
    ServiceReply third = service.compileSync(smallRequest("p3"));
    ASSERT_TRUE(third.ok);
    service.waitForPromotionsIdle();
    ServiceStats after = service.stats();
    EXPECT_GE(after.promotions + after.guardTrips, 1u)
        << "clearing the fault must allow the promotion to retry";
}

TEST_F(ServiceFailPointTest, SuccessfulMidRequestFlushIsInvisible)
{
    const std::string lib = "service_failpoint_flush_ok.qplb";
    std::remove(lib.c_str());

    ServiceOptions options;
    options.workers = 1;
    options.enablePromotion = false;
    options.tier1Grape = false;
    options.pulseLibraryPath = lib;
    CompileService service(options);

    FailPoint *flush = findFailpoint("service_flush_during_request");
    ASSERT_NE(flush, nullptr);
    flush->activateAlways();

    ServiceReply reply = service.compileSync(smallRequest("f1"));
    EXPECT_GE(flush->fires(), 1u);
    ASSERT_TRUE(reply.ok) << reply.toJson();
    EXPECT_FALSE(reply.degraded)
        << "a flush that *succeeds* must not mark the reply degraded";
    EXPECT_EQ(service.stats().degradedReplies, 0u);
    std::remove(lib.c_str());
}

TEST_F(ServiceFailPointTest, FailingMidRequestFlushDegradesNotErrors)
{
    const std::string lib = "service_failpoint_flush_fail.qplb";
    std::remove(lib.c_str());

    ServiceOptions options;
    options.workers = 1;
    options.enablePromotion = false;
    options.tier1Grape = false;
    options.pulseLibraryPath = lib;
    CompileService service(options);

    FailPoint *flush = findFailpoint("service_flush_during_request");
    FailPoint *rename = findFailpoint("pulselib_rename_fail");
    ASSERT_NE(flush, nullptr);
    ASSERT_NE(rename, nullptr);
    flush->activateAlways();
    rename->activateAlways(); // PR 7 site: the forced flush now fails

    ServiceReply reply = service.compileSync(smallRequest("f2"));
    EXPECT_GE(flush->fires(), 1u);
    EXPECT_GE(rename->fires(), 1u);

    // The degradation contract: the compile succeeded, persistence
    // failed -> ok:true + degraded:true, never an error reply.
    ASSERT_TRUE(reply.ok) << reply.toJson();
    EXPECT_TRUE(reply.degraded);
    EXPECT_NE(reply.degradedReason.find("flush"), std::string::npos)
        << reply.degradedReason;
    EXPECT_GE(service.stats().degradedReplies, 1u);

    // The degraded flag survives serialization for daemon clients.
    std::string json = reply.toJson();
    StatusOr<JsonValue> parsed = parseJson(json);
    ASSERT_TRUE(parsed.isOk()) << json;
    const JsonValue *degraded = parsed.value().find("degraded");
    ASSERT_NE(degraded, nullptr);
    EXPECT_TRUE(degraded->boolean);
    const JsonValue *ok_field = parsed.value().find("ok");
    ASSERT_NE(ok_field, nullptr);
    EXPECT_TRUE(ok_field->boolean);

    // Fault clears -> same fingerprint serves clean (the cached
    // artifact itself was never poisoned by the failed flush).
    failpoints::resetAll();
    ServiceReply clean = service.compileSync(smallRequest("f3"));
    ASSERT_TRUE(clean.ok);
    EXPECT_FALSE(clean.degraded);
    std::remove(lib.c_str());
}

} // namespace
} // namespace qaic::service
