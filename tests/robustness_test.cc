/**
 * @file
 * End-to-end robustness acceptance tests: per-job error isolation in
 * compileBatch (one bad circuit never poisons its neighbours), graceful
 * GRAPE degradation under injected non-convergence, and compile
 * deadlines surfacing as kDeadlineExceeded instead of process death.
 */
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "compiler/batch.h"
#include "compiler/compiler.h"
#include "compiler/pipeline.h"
#include "ir/circuit.h"
#include "util/failpoint.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"
#include "workloads/qft.h"

namespace qaic {
namespace {

class RobustnessTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoints::resetAll(); }
    void TearDown() override { failpoints::resetAll(); }
};

/** Solo compile of @p job under @p options, for bitwise comparison. */
CompilationResult
compileAlone(const BatchJob &job, const CompilerOptions &options = {})
{
    Pipeline pipeline = Pipeline::forStrategy(job.strategy);
    CompilationContext context(job.device, options);
    return pipeline.compile(job.circuit, context).value();
}

void
expectBitwiseEqual(const CompilationResult &a, const CompilationResult &b,
                   const std::string &what)
{
    EXPECT_EQ(a.latencyNs, b.latencyNs) << what;
    EXPECT_EQ(a.instructionCount, b.instructionCount) << what;
    EXPECT_EQ(a.aggregateCount, b.aggregateCount) << what;
    EXPECT_EQ(a.swapCount, b.swapCount) << what;
    ASSERT_EQ(a.schedule.ops.size(), b.schedule.ops.size()) << what;
    for (std::size_t i = 0; i < a.schedule.ops.size(); ++i) {
        EXPECT_EQ(a.schedule.ops[i].start, b.schedule.ops[i].start)
            << what << " op " << i;
        EXPECT_EQ(a.schedule.ops[i].duration, b.schedule.ops[i].duration)
            << what << " op " << i;
    }
}

/**
 * The acceptance scenario: a batch mixing a malformed circuit (qubit
 * index out of range), an oversized circuit (wider than its device), a
 * circuit whose device cannot route it (disconnected islands) and a
 * device with foreign control limits — alongside good jobs. Every bad
 * job gets its own precise error; every good job's result is bitwise
 * identical to compiling it alone.
 */
TEST_F(RobustnessTest, BatchIsolatesEveryKindOfBadJob)
{
    Circuit malformed = qaoaMaxcut(lineGraph(4));
    malformed.mutableGates()[0].qubits[0] = 99;

    // A connected 4-qubit interaction chain: on a device made of two
    // 2-qubit islands, every placement leaves some gate crossing the
    // gap, and SWAPs cannot bridge it either.
    Circuit crosses_islands(4);
    crosses_islands.add(makeCnot(0, 1));
    crosses_islands.add(makeCnot(1, 2));
    crosses_islands.add(makeCnot(2, 3));

    std::vector<BatchJob> jobs;
    jobs.push_back({qaoaMaxcut(lineGraph(5)), DeviceModel::gridFor(5),
                    Strategy::kClsAggregation});              // 0: good
    jobs.push_back({malformed, DeviceModel::gridFor(4),
                    Strategy::kClsAggregation});              // 1: lint
    jobs.push_back({qft(6), DeviceModel::gridFor(4),
                    Strategy::kClsAggregation});              // 2: too wide
    jobs.push_back({qft(4), DeviceModel::gridFor(4),
                    Strategy::kIsa});                         // 3: good
    jobs.push_back({crosses_islands,
                    DeviceModel(4, {{0, 1}, {2, 3}}),
                    Strategy::kClsAggregation});              // 4: unroutable
    jobs.push_back({qft(4),
                    DeviceModel::gridFor(4, /*mu1=*/0.05, /*mu2=*/0.01),
                    Strategy::kClsAggregation});              // 5: limits

    std::vector<StatusOr<CompilationResult>> results =
        compileBatch(jobs, {}, /*threads=*/3);
    ASSERT_EQ(results.size(), jobs.size());

    ASSERT_TRUE(results[0].isOk()) << results[0].status().toString();
    ASSERT_TRUE(results[3].isOk()) << results[3].status().toString();

    ASSERT_FALSE(results[1].isOk());
    EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(results[1].status().message().find("input circuit"),
              std::string::npos)
        << results[1].status().toString();

    ASSERT_FALSE(results[2].isOk());
    EXPECT_EQ(results[2].status().code(), StatusCode::kInvalidArgument)
        << results[2].status().toString();

    ASSERT_FALSE(results[4].isOk());
    EXPECT_EQ(results[4].status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(results[4].status().message().find("disconnected"),
              std::string::npos)
        << results[4].status().toString();

    ASSERT_FALSE(results[5].isOk());
    EXPECT_EQ(results[5].status().code(),
              StatusCode::kFailedPrecondition);
    EXPECT_NE(results[5].status().message().find("control limits"),
              std::string::npos)
        << results[5].status().toString();

    // Error isolation must not perturb the good results: bitwise
    // identical to compiling each alone.
    expectBitwiseEqual(results[0].value(), compileAlone(jobs[0]),
                       "job 0");
    expectBitwiseEqual(results[3].value(), compileAlone(jobs[3]),
                       "job 3");
}

TEST_F(RobustnessTest, InjectedWorkerFailureHitsExactlyOneSlot)
{
    const Circuit circuits[] = {qaoaMaxcut(lineGraph(4)), qft(4),
                                qaoaMaxcut(lineGraph(5))};
    DeviceModel device = DeviceModel::gridFor(5);

    // One worker thread claims jobs in order, so nth:2 deterministically
    // fails the middle job and only it.
    failpoints::find("batch_worker_fail")->activateNth(2);
    std::vector<StatusOr<CompilationResult>> results = compileBatch(
        device, circuits, Strategy::kClsAggregation, {}, /*threads=*/1);
    ASSERT_EQ(results.size(), 3u);

    ASSERT_FALSE(results[1].isOk());
    EXPECT_EQ(results[1].status().code(), StatusCode::kUnavailable);
    EXPECT_NE(results[1].status().message().find("batch_worker_fail"),
              std::string::npos);

    failpoints::resetAll();
    for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        ASSERT_TRUE(results[i].isOk()) << results[i].status().toString();
        BatchJob job{circuits[i], device, Strategy::kClsAggregation};
        expectBitwiseEqual(results[i].value(), compileAlone(job),
                           "job " + std::to_string(i));
    }
}

TEST_F(RobustnessTest, GrapeNonconvergenceDegradesToAnalyticLatencies)
{
    Circuit circuit = qaoaMaxcut(lineGraph(4));
    DeviceModel device = DeviceModel::gridFor(4);

    CompilerOptions grape_options;
    grape_options.useGrapeOracle = true;
    grape_options.grapeOptions.grape.maxIterations = 60;
    grape_options.grapeOptions.grape.restarts = 1;
    grape_options.grapeOptions.resolution = 4.0;

    // Every GRAPE search fails: the compile must finish anyway, flagged
    // degraded, priced by the analytic fallback.
    failpoints::find("grape_nonconverge")->activateAlways();
    Compiler degraded_compiler(device, grape_options);
    StatusOr<CompilationResult> degraded =
        degraded_compiler.tryCompile(circuit, Strategy::kClsAggregation);
    ASSERT_TRUE(degraded.isOk()) << degraded.status().toString();
    EXPECT_TRUE(degraded->degraded);
    EXPECT_NE(degraded->degradedReason.find("analytic"),
              std::string::npos)
        << degraded->degradedReason;

    // The fallback prices exactly like the analytic oracle, so the
    // degraded result matches a plain analytic-mode compile.
    failpoints::resetAll();
    CompilerOptions analytic_options = grape_options;
    analytic_options.useGrapeOracle = false;
    Compiler analytic_compiler(device, analytic_options);
    CompilationResult analytic = analytic_compiler.compile(
        circuit, Strategy::kClsAggregation);
    EXPECT_FALSE(analytic.degraded);
    EXPECT_EQ(degraded->latencyNs, analytic.latencyNs);
    EXPECT_EQ(degraded->instructionCount, analytic.instructionCount);
}

TEST_F(RobustnessTest, ExpiredDeadlineFailsWithDeadlineExceeded)
{
    Circuit circuit = qaoaMaxcut(lineGraph(5));
    DeviceModel device = DeviceModel::gridFor(5);
    CompilerOptions options;
    options.deadlineMs = 1e-6; // already due at the first check

    Compiler compiler(device, options);
    StatusOr<CompilationResult> result =
        compiler.tryCompile(circuit, Strategy::kClsAggregation);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(result.status().message().find("deadline"),
              std::string::npos)
        << result.status().toString();
    // The pass that overran is named, so the CLI message is actionable.
    EXPECT_NE(result.status().message().find("pass"), std::string::npos);

    // The same compiler still works once the budget is realistic: the
    // failure was per-compile state, not a poisoned pipeline.
    StatusOr<CompilationResult> retry =
        compiler.tryCompile(circuit, Strategy::kClsAggregation);
    EXPECT_FALSE(retry.isOk()) << "options are immutable per compiler";

    CompilerOptions relaxed;
    Compiler fresh(device, relaxed);
    EXPECT_TRUE(
        fresh.tryCompile(circuit, Strategy::kClsAggregation).isOk());
}

} // namespace
} // namespace qaic
