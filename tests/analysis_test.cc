/**
 * @file
 * Unit tests for the abstract-interpretation dataflow analyzer: every
 * diagnostic kind fires on a planted example and is machine-verified,
 * load-bearing gates are never claimed removable, suggested fixes
 * apply exactly as proven, and the AnalysisPass threads reports
 * through the compiler pipeline.
 */
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "compiler/compiler.h"
#include "device/device.h"
#include "verify/verify.h"

namespace qaic {
namespace {

constexpr double kPi = 3.14159265358979323846;

/** Diagnostics of @p kind in @p report. */
std::vector<Diagnostic>
ofKind(const AnalysisReport &report, DiagnosticKind kind)
{
    std::vector<Diagnostic> out;
    for (const Diagnostic &d : report.diagnostics) {
        if (d.kind == kind)
            out.push_back(d);
    }
    return out;
}

TEST(AnalysisTest, ExplicitIdentityGateIsFlaggedAndVerified)
{
    Circuit c(2);
    c.add(makeH(0));
    c.add(makeId(1));
    c.add(makeCnot(0, 1));

    AnalysisReport report = analyzeCircuit(c);
    auto found = ofKind(report, DiagnosticKind::kRemovableGate);
    ASSERT_GE(found.size(), 1u);
    EXPECT_EQ(found[0].gateIndex, 1);
    EXPECT_TRUE(found[0].removable);
    EXPECT_TRUE(found[0].verified) << found[0].toString();
    EXPECT_EQ(report.failedVerification, 0);
}

TEST(AnalysisTest, IdentityRotationFoldsToZeroMod2Pi)
{
    Circuit c(2);
    c.add(makeH(0));
    c.add(makeRz(0, 2.0 * kPi)); // -I: identity up to global phase
    c.add(makeRx(1, 0.0));
    c.add(makeCnot(0, 1));

    AnalysisReport report = analyzeCircuit(c);
    auto found = ofKind(report, DiagnosticKind::kIdentityRotation);
    ASSERT_GE(found.size(), 2u);
    for (const Diagnostic &d : found) {
        EXPECT_TRUE(d.removable);
        EXPECT_EQ(d.mode, VerificationMode::kUnitary);
        EXPECT_TRUE(d.verified) << d.toString();
    }
    EXPECT_EQ(report.failedVerification, 0);
}

TEST(AnalysisTest, DeadControlOnProvablyZeroQubit)
{
    // q1 is never driven off |0>, so the CNOT it controls never fires.
    Circuit c(3);
    c.add(makeX(0));
    c.add(makeCnot(1, 2));

    AnalysisReport report = analyzeCircuit(c);
    auto found = ofKind(report, DiagnosticKind::kDeadControl);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].gateIndex, 1);
    EXPECT_EQ(found[0].mode, VerificationMode::kInitialState);
    EXPECT_TRUE(found[0].verified) << found[0].toString();
    EXPECT_EQ(report.failedVerification, 0);
}

TEST(AnalysisTest, SelfInversePairCancelsAcrossCommutingGates)
{
    // The X(1) between the two H(0) commutes with both, so the pair
    // still cancels; T/Tdg on a superposition (q1 is |1> -> H -> |->)
    // are adjoints rather than involutions. Both qubits are driven hot
    // first so the classical domain cannot claim the gates alone.
    Circuit c(2);
    c.add(makeH(0));
    c.add(makeX(1));
    c.add(makeH(0));
    c.add(makeH(1));
    c.add(makeT(1));
    c.add(makeTdg(1));

    AnalysisReport report = analyzeCircuit(c);
    auto found = ofKind(report, DiagnosticKind::kSelfInversePair);
    ASSERT_GE(found.size(), 2u);
    for (const Diagnostic &d : found) {
        EXPECT_EQ(d.gateIndices.size(), 2u);
        EXPECT_EQ(d.fix.removeGates.size(), 2u);
        EXPECT_TRUE(d.verified) << d.toString();
    }
    EXPECT_EQ(report.failedVerification, 0);
}

TEST(AnalysisTest, MergeableRotationsFoldIntoOneGate)
{
    // Two Rz on the same wire parity inside one diagonal segment. The
    // wire must be in superposition first, or the classical domain
    // proves each rotation a global-phase identity on its own.
    Circuit c(2);
    c.add(makeH(1));
    c.add(makeRz(1, 0.3));
    c.add(makeX(0));
    c.add(makeRz(1, 0.5));

    AnalysisReport report = analyzeCircuit(c);
    auto found = ofKind(report, DiagnosticKind::kMergeableRotation);
    ASSERT_GE(found.size(), 1u);
    const Diagnostic &d = found[0];
    EXPECT_TRUE(d.removable);
    EXPECT_EQ(d.fix.removeGates.size(), 2u);
    ASSERT_EQ(d.fix.insertGates.size(), 1u);
    EXPECT_EQ(d.fix.insertGates[0].kind, GateKind::kRz);
    EXPECT_NEAR(d.fix.insertGates[0].params[0], 0.8, 1e-9);
    EXPECT_TRUE(d.verified) << d.toString();
    EXPECT_EQ(report.failedVerification, 0);
}

TEST(AnalysisTest, InformationalFindings)
{
    // q1 only ever sees a Z (stays |0>): constant qubit. q2 ends in
    // |1>: ancilla not reset. {q0,q3} and {q4,q5} never couple:
    // splittable register.
    Circuit c(6);
    c.add(makeH(0));
    c.add(makeCnot(0, 3));
    c.add(makeZ(1));
    c.add(makeX(2));
    c.add(makeCnot(4, 5));

    AnalysisReport report = analyzeCircuit(c);
    auto constant = ofKind(report, DiagnosticKind::kConstantQubit);
    ASSERT_GE(constant.size(), 1u);
    EXPECT_EQ(constant[0].qubits, std::vector<int>{1});

    auto ancilla = ofKind(report, DiagnosticKind::kAncillaNotReset);
    bool q2_flagged = false;
    for (const Diagnostic &d : ancilla)
        q2_flagged |= d.qubits == std::vector<int>{2};
    EXPECT_TRUE(q2_flagged);

    auto split = ofKind(report, DiagnosticKind::kSplittableRegister);
    ASSERT_EQ(split.size(), 1u);
    EXPECT_FALSE(split[0].removable);
    EXPECT_EQ(split[0].mode, VerificationMode::kNone);

    // And they all disappear with informational reporting off.
    AnalysisOptions quiet;
    quiet.informational = false;
    AnalysisReport lean = analyzeCircuit(c, quiet);
    EXPECT_EQ(ofKind(lean, DiagnosticKind::kConstantQubit).size(), 0u);
    EXPECT_EQ(ofKind(lean, DiagnosticKind::kAncillaNotReset).size(), 0u);
    EXPECT_EQ(ofKind(lean, DiagnosticKind::kSplittableRegister).size(),
              0u);
}

TEST(AnalysisTest, LoadBearingGatesAreNeverFlagged)
{
    // Every gate here changes the reachable state (or the unitary) in
    // an essential way; a removable claim on any of them would be a
    // false positive.
    Circuit ghz(3);
    ghz.add(makeH(0));
    ghz.add(makeCnot(0, 1));
    ghz.add(makeCnot(1, 2));

    AnalysisReport ghz_report = analyzeCircuit(ghz);
    for (const Diagnostic &d : ghz_report.diagnostics)
        EXPECT_FALSE(d.removable) << d.toString();
    EXPECT_EQ(ghz_report.failedVerification, 0);

    Circuit hot(2);
    hot.add(makeX(0));
    hot.add(makeCnot(0, 1)); // control is |1>: fires, not dead
    hot.add(makeH(1));
    hot.add(makeT(1)); // T on a superposition: real relative phase

    AnalysisReport hot_report = analyzeCircuit(hot);
    for (const Diagnostic &d : hot_report.diagnostics)
        EXPECT_FALSE(d.removable) << d.toString();
    EXPECT_EQ(hot_report.failedVerification, 0);
}

TEST(AnalysisTest, EngineRefutesLoadBearingDeletion)
{
    // The adversarial check has teeth: deleting a load-bearing gate is
    // provably NOT a zero-state equivalence.
    Circuit c(2);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));

    SuggestedFix bogus;
    bogus.removeGates = {1};
    Circuit broken = applySuggestedFix(c, bogus);
    ASSERT_EQ(broken.gates().size(), 1u);

    EquivalenceReport unitary = analyzeCircuitsEquivalent(c, broken);
    EXPECT_EQ(unitary.verdict, EquivalenceVerdict::kNotEquivalent);
    EquivalenceReport state = analyzeZeroStateEquivalent(c, broken);
    EXPECT_EQ(state.verdict, EquivalenceVerdict::kNotEquivalent);
}

TEST(AnalysisTest, ApplySuggestedFixSplicesAtFirstRemoval)
{
    Circuit c(2);
    c.add(makeH(0));
    c.add(makeRz(1, 0.3));
    c.add(makeZ(0));
    c.add(makeRz(1, 0.5));

    SuggestedFix fix;
    fix.removeGates = {1, 3};
    fix.insertGates = {makeRz(1, 0.8)};
    Circuit fixed = applySuggestedFix(c, fix);

    ASSERT_EQ(fixed.gates().size(), 3u);
    EXPECT_EQ(fixed.gates()[0].kind, GateKind::kH);
    EXPECT_EQ(fixed.gates()[1].kind, GateKind::kRz);
    EXPECT_NEAR(fixed.gates()[1].params[0], 0.8, 1e-12);
    EXPECT_EQ(fixed.gates()[2].kind, GateKind::kZ);
}

TEST(AnalysisTest, ZeroStateEquivalenceTiers)
{
    // Clifford tier: X(0) vs CNOT(|1> control) images of |00>.
    Circuit a(2), b(2);
    a.add(makeX(0));
    a.add(makeCnot(0, 1));
    b.add(makeX(0));
    b.add(makeX(1));
    EquivalenceReport clifford = analyzeZeroStateEquivalent(a, b);
    EXPECT_TRUE(clifford.equivalent()) << clifford.note;

    // Diagonal tier: a diagonal gate acts on |0...0> as global phase.
    Circuit d1(2), d2(2);
    d1.add(makeX(0));
    d1.add(makeRzz(0, 1, 0.4));
    d2.add(makeX(0));
    EquivalenceReport diagonal = analyzeZeroStateEquivalent(d1, d2);
    EXPECT_TRUE(diagonal.equivalent()) << diagonal.note;

    // Not equivalent on |0..0> even though both are valid circuits.
    Circuit e1(1), e2(1);
    e1.add(makeX(0));
    EquivalenceReport different = analyzeZeroStateEquivalent(e1, e2);
    EXPECT_EQ(different.verdict, EquivalenceVerdict::kNotEquivalent);
}

TEST(AnalysisTest, JsonReportIsWellFormedEnough)
{
    Circuit c(2);
    c.add(makeId(0));
    c.add(makeH(1));

    AnalysisReport report = analyzeCircuit(c);
    std::string json = report.toJson();
    EXPECT_NE(json.find("\"stage\""), std::string::npos);
    EXPECT_NE(json.find("\"diagnostics\""), std::string::npos);
    EXPECT_NE(json.find("\"removable-gate\""), std::string::npos);
    EXPECT_NE(json.find("\"failedVerification\":0"), std::string::npos);

    // Escaping: control characters and quotes never leak through raw.
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(AnalysisTest, PipelineThreadsAnalysisReports)
{
    Circuit c(3);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    c.add(makeId(2));

    DeviceModel device = DeviceModel::gridFor(3);
    CompilerOptions options;
    options.analyze = true;
    Compiler compiler(device, options);
    CompilationResult result = compiler.compile(c, Strategy::kIsa);

    ASSERT_EQ(result.analyses.size(), 2u);
    EXPECT_EQ(result.analyses[0].stage, "logical");
    EXPECT_EQ(result.analyses[1].stage, "routed");
    for (const AnalysisReport &report : result.analyses)
        EXPECT_TRUE(report.allVerified()) << report.toString();

    // Analysis is read-only: compiling without it gives the same gates.
    Compiler plain(device, CompilerOptions{});
    CompilationResult base = plain.compile(c, Strategy::kIsa);
    EXPECT_TRUE(base.analyses.empty());
    ASSERT_EQ(base.physicalCircuit.gates().size(),
              result.physicalCircuit.gates().size());
}

} // namespace
} // namespace qaic
