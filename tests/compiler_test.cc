/**
 * @file
 * Integration tests for the end-to-end compiler: all strategies produce
 * valid, semantics-preserving schedules, and the paper's qualitative
 * results hold (strategy ordering, commutativity sensitivity, width
 * behaviour).
 */
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "compiler/decompose.h"
#include "compiler/handopt.h"
#include "verify/verify.h"
#include "workloads/graphs.h"
#include "workloads/ising.h"
#include "workloads/qaoa.h"
#include "workloads/suite.h"
#include "workloads/uccsd.h"

namespace qaic {
namespace {

const Strategy kAllStrategies[] = {
    Strategy::kIsa,         Strategy::kCls,
    Strategy::kHandOpt,     Strategy::kClsHandOpt,
    Strategy::kAggregation, Strategy::kClsAggregation,
};

TEST(DecomposeTest, CnotTemplateIsExact)
{
    Circuit c(2);
    appendCnotViaIswap(c, 0, 1);
    EXPECT_NEAR(phaseDistance(c.unitary(), makeCnot(0, 1).matrix()), 0.0,
                1e-9);
    // And with reversed operands (compare in register order: a raw gate
    // matrix is in gate order, so wrap it in a reference circuit).
    Circuit r(2);
    appendCnotViaIswap(r, 1, 0);
    Circuit ref(2);
    ref.add(makeCnot(1, 0));
    EXPECT_NEAR(phaseDistance(r.unitary(), ref.unitary()), 0.0, 1e-7);
}

TEST(DecomposeTest, PhysicalLoweringPreservesUnitary)
{
    Circuit c(3);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    c.add(makeCz(1, 2));
    c.add(makeRzz(0, 1, 0.9));
    c.add(makeSwap(1, 2));
    Circuit phys = decomposeToPhysical(c);
    EXPECT_TRUE(circuitsEquivalent(c, phys));
    // Only physical gates remain.
    for (const Gate &g : phys.gates()) {
        EXPECT_NE(g.kind, GateKind::kCnot);
        EXPECT_NE(g.kind, GateKind::kCz);
        EXPECT_NE(g.kind, GateKind::kRzz);
    }
}

TEST(DecomposeTest, CcxLowering)
{
    Circuit c(3);
    c.add(makeCcx(0, 1, 2));
    Circuit lowered = decomposeCcx(c);
    EXPECT_TRUE(circuitsEquivalent(c, lowered));
    EXPECT_LE(lowered.maxGateWidth(), 2);
}

TEST(HandOptTest, CancelsInversePairs)
{
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeCnot(0, 1));
    c.add(makeH(0));
    c.add(makeH(0));
    HandOptStats stats;
    Circuit out = handOptimize(c, &stats);
    EXPECT_EQ(stats.cancelledPairs, 2);
    EXPECT_EQ(out.size(), 0u);
}

TEST(HandOptTest, FusesSingleQubitRuns)
{
    Circuit c(1);
    c.add(makeH(0));
    c.add(makeT(0));
    c.add(makeRz(0, 0.4));
    HandOptStats stats;
    Circuit out = handOptimize(c, &stats);
    EXPECT_EQ(stats.fusedSingleQubitRuns, 1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gates()[0].kind, GateKind::kAggregate);
    EXPECT_TRUE(circuitsEquivalent(c, out));
}

TEST(HandOptTest, AppliesZzTemplate)
{
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRz(1, 5.67));
    c.add(makeCnot(0, 1));
    HandOptStats stats;
    Circuit out = handOptimize(c, &stats);
    EXPECT_GE(stats.zzTemplates, 1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out.gates()[0].isDiagonal());
    EXPECT_TRUE(circuitsEquivalent(c, out));
}

TEST(HandOptTest, SemanticsOnLargerCircuit)
{
    Circuit c = qaoaMaxcut(lineGraph(5));
    Circuit out = handOptimize(c);
    EXPECT_TRUE(circuitsEquivalent(c, out));
    EXPECT_LT(out.size(), c.size());
}

class StrategySweep : public ::testing::TestWithParam<Strategy>
{
};

TEST_P(StrategySweep, TriangleExampleCompilesValid)
{
    Circuit tri = qaoaTriangleExample();
    Compiler compiler(DeviceModel::line(3));
    CompilationResult r = compiler.compile(tri, GetParam());

    EXPECT_GT(r.latencyNs, 0.0);
    std::string error;
    EXPECT_TRUE(r.schedule.validate(3, &error)) << error;
    EXPECT_EQ(r.instructionCount,
              static_cast<int>(r.physicalCircuit.size()));
    EXPECT_LE(r.maxWidth, compiler.options().maxInstructionWidth);
    // The physical instruction stream must be equivalent to the routed
    // circuit (backends only reorder/merge/lower, never change meaning).
    EXPECT_TRUE(circuitsEquivalent(r.routing.physical, r.physicalCircuit,
                                   1e-6, 6));
}

INSTANTIATE_TEST_SUITE_P(All, StrategySweep,
                         ::testing::ValuesIn(kAllStrategies));

TEST(CompilerTest, RoutingStageIsPermutationCorrect)
{
    Circuit tri = qaoaTriangleExample();
    Compiler compiler(DeviceModel::line(3));
    CompilationResult r = compiler.compile(tri, Strategy::kIsa);
    // ISA has no logical reordering before routing, so the routed circuit
    // must implement the source exactly (modulo placement/permutation).
    EXPECT_TRUE(routedEquivalent(tri, r.routing, 3));
}

TEST(CompilerTest, StrategyOrderingOnCommutativeWorkload)
{
    // MAXCUT: CLS helps, aggregation helps more, the combination wins
    // (Figure 9's left half).
    Circuit c = qaoaMaxcut(lineGraph(8));
    Compiler compiler(DeviceModel::gridFor(8));
    double isa = compiler.compile(c, Strategy::kIsa).latencyNs;
    double cls = compiler.compile(c, Strategy::kCls).latencyNs;
    double cls_agg =
        compiler.compile(c, Strategy::kClsAggregation).latencyNs;

    EXPECT_LT(cls, isa);
    EXPECT_LT(cls_agg, cls);
    EXPECT_LT(cls_agg, isa * 0.5);
}

TEST(CompilerTest, ClsNeutralOnSerialWorkload)
{
    // UCCSD has almost no exploitable commutativity: CLS alone should be
    // within a few percent of ISA (Section 6.1).
    Circuit c = uccsdAnsatz(4);
    Compiler compiler(DeviceModel::gridFor(4));
    double isa = compiler.compile(c, Strategy::kIsa).latencyNs;
    double cls = compiler.compile(c, Strategy::kCls).latencyNs;
    EXPECT_LT(std::abs(cls - isa) / isa, 0.15);
}

TEST(CompilerTest, AggregationBeatsHandOptEverywhere)
{
    for (const char *which : {"line", "ising", "uccsd"}) {
        Circuit c = std::string(which) == "line"
                        ? qaoaMaxcut(lineGraph(6))
                        : std::string(which) == "ising"
                              ? isingChain(6, {2, 0.9, 0.6})
                              : uccsdAnsatz(4);
        Compiler compiler(DeviceModel::gridFor(c.numQubits()));
        double hand =
            compiler.compile(c, Strategy::kClsHandOpt).latencyNs;
        double agg =
            compiler.compile(c, Strategy::kClsAggregation).latencyNs;
        EXPECT_LE(agg, hand * 1.02) << which;
    }
}

TEST(CompilerTest, WidthLimitControlsAggregates)
{
    Circuit c = uccsdAnsatz(4);
    CompilerOptions narrow;
    narrow.maxInstructionWidth = 2;
    Compiler c2(DeviceModel::gridFor(4), narrow);
    CompilationResult r2 = c2.compile(c, Strategy::kClsAggregation);
    EXPECT_LE(r2.maxWidth, 2);

    CompilerOptions wide;
    wide.maxInstructionWidth = 4;
    Compiler c4(DeviceModel::gridFor(4), wide);
    CompilationResult r4 = c4.compile(c, Strategy::kClsAggregation);
    EXPECT_LE(r4.maxWidth, 4);
    // Serial workload: more width, no worse latency (Figure 10 right).
    EXPECT_LE(r4.latencyNs, r2.latencyNs * 1.001);
}

TEST(CompilerTest, DiagonalBlockDetectionReported)
{
    Circuit c = qaoaMaxcut(lineGraph(6));
    Compiler compiler(DeviceModel::gridFor(6));
    CompilationResult r = compiler.compile(c, Strategy::kClsAggregation);
    EXPECT_EQ(r.diagonalBlocks, 5); // One per line edge.
}

TEST(CompilerTest, GrapeOracleEndToEnd)
{
    // Tiny circuit priced by real GRAPE searches end to end.
    Circuit c(2);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    c.add(makeRz(1, 1.1));

    CompilerOptions opt;
    opt.useGrapeOracle = true;
    opt.grapeOptions.grape.maxIterations = 250;
    opt.grapeOptions.grape.restarts = 1;
    opt.grapeOptions.resolution = 1.0;
    opt.grapeOptions.maxWidth = 2;
    Compiler compiler(DeviceModel::line(2), opt);

    CompilationResult isa = compiler.compile(c, Strategy::kIsa);
    CompilationResult agg =
        compiler.compile(c, Strategy::kClsAggregation);
    EXPECT_GT(isa.latencyNs, 0.0);
    EXPECT_LT(agg.latencyNs, isa.latencyNs);
}

TEST(CompilerTest, SchedulesValidAcrossSuiteSample)
{
    // A broader integration pass over down-scaled suite workloads.
    for (const char *name : {"MAXCUT-line", "Ising-n30", "UCCSD-n4"}) {
        Circuit c = benchmarkByName(name, 0.3).circuit;
        Compiler compiler(DeviceModel::gridFor(c.numQubits()));
        for (Strategy s : kAllStrategies) {
            CompilationResult r = compiler.compile(c, s);
            std::string error;
            EXPECT_TRUE(r.schedule.validate(
                compiler.device().numQubits(), &error))
                << name << "/" << strategyName(s) << ": " << error;
            EXPECT_GT(r.latencyNs, 0.0);
        }
    }
}

} // namespace
} // namespace qaic
