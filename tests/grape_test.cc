/**
 * @file
 * Tests for the GRAPE optimal-control unit: analytic-gradient correctness
 * against finite differences, convergence on known gates, pulse
 * verification, amplitude-limit respect, and minimal-duration search.
 */
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "control/grape.h"
#include "control/pulse.h"
#include "ir/gate.h"
#include "la/cmatrix.h"
#include "la/eig.h"
#include "la/expm.h"

namespace qaic {
namespace {

GrapeOptions
fastOptions()
{
    GrapeOptions opt;
    opt.maxIterations = 300;
    opt.targetFidelity = 0.999;
    opt.dt = 0.5;
    opt.restarts = 2;
    opt.amplitudePenalty = 1e-5;
    opt.slopePenalty = 1e-5;
    return opt;
}

TEST(PulseTest, ConstantXyPulseImplementsIswap)
{
    // Drive the single XY channel at full amplitude for 12.5 ns: the
    // textbook iSWAP implementation (up to conjugation phase conventions).
    DeviceModel dev = DeviceModel::line(2);
    PulseSequence pulses;
    pulses.dt = 0.5;
    pulses.amplitudes.assign(dev.channels().size(), {});
    std::size_t steps = 25; // 12.5 ns.
    for (std::size_t k = 0; k < dev.channels().size(); ++k)
        pulses.amplitudes[k].assign(steps, 0.0);
    for (std::size_t k = 0; k < dev.channels().size(); ++k)
        if (dev.channels()[k].type == ControlChannel::Type::kXY)
            for (auto &v : pulses.amplitudes[k])
                v = -dev.mu2(); // negative sign gives +i phases.

    CMatrix u = pulseUnitary(dev, pulses);
    EXPECT_NEAR(processFidelity(u, makeIswap(0, 1).matrix()), 1.0, 1e-6);
}

TEST(PulseTest, CsvHasHeaderAndRows)
{
    DeviceModel dev = DeviceModel::line(2);
    PulseSequence pulses;
    pulses.dt = 1.0;
    pulses.amplitudes.assign(dev.channels().size(),
                             std::vector<double>(3, 0.01));
    std::string csv = pulses.toCsv(dev);
    EXPECT_NE(csv.find("time_ns"), std::string::npos);
    EXPECT_NE(csv.find("xy0-1"), std::string::npos);
    // Header + 3 rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(GrapeTest, GradientMatchesFiniteDifference)
{
    // Re-derive the loss used by GRAPE for a tiny problem and compare its
    // analytic gradient (via expiDirectionalDerivative inside optimize)
    // against central differences computed from pulseUnitary.
    DeviceModel dev(1, {});
    CMatrix target = makeX(0).matrix();

    PulseSequence pulses;
    pulses.dt = 1.0;
    pulses.amplitudes = {{0.03, -0.02, 0.05}, {0.01, 0.04, -0.03}};

    auto fidelity = [&](const PulseSequence &p) {
        CMatrix u = pulseUnitary(dev, p);
        return processFidelity(u, target);
    };

    // Analytic gradient of F wrt u_k[j], mirroring grape.cc internals.
    const double two_pi = 2.0 * M_PI;
    std::vector<CMatrix> ops;
    for (std::size_t k = 0; k < dev.channels().size(); ++k)
        ops.push_back(dev.channelOperator(k) * Cmplx(two_pi, 0.0));

    std::size_t steps = 3;
    std::vector<EigResult> eigs(steps);
    std::vector<CMatrix> prefix(steps + 1), suffix(steps + 1);
    for (std::size_t j = 0; j < steps; ++j) {
        CMatrix h(2, 2);
        for (std::size_t k = 0; k < ops.size(); ++k)
            h += ops[k] * Cmplx(pulses.amplitudes[k][j], 0.0);
        eigs[j] = hermitianEig(h);
    }
    prefix[0] = CMatrix::identity(2);
    for (std::size_t j = 0; j < steps; ++j)
        prefix[j + 1] = expiFromEig(eigs[j], pulses.dt) * prefix[j];
    suffix[steps] = CMatrix::identity(2);
    for (std::size_t j = steps; j > 0; --j)
        suffix[j - 1] = suffix[j] * expiFromEig(eigs[j - 1], pulses.dt);

    Cmplx z = frobeniusInner(target, prefix[steps]);
    for (std::size_t j = 0; j < steps; ++j) {
        CMatrix w = prefix[j] * target.dagger() * suffix[j + 1];
        for (std::size_t k = 0; k < ops.size(); ++k) {
            CMatrix du =
                expiDirectionalDerivative(eigs[j], ops[k], pulses.dt);
            Cmplx tr(0, 0);
            for (std::size_t a = 0; a < 2; ++a)
                for (std::size_t b = 0; b < 2; ++b)
                    tr += w(a, b) * du(b, a);
            double analytic = 2.0 * (std::conj(z) * tr).real() / 4.0;

            double eps = 1e-6;
            PulseSequence plus = pulses, minus = pulses;
            plus.amplitudes[k][j] += eps;
            minus.amplitudes[k][j] -= eps;
            double numeric =
                (fidelity(plus) - fidelity(minus)) / (2.0 * eps);
            EXPECT_NEAR(analytic, numeric, 1e-5)
                << "channel " << k << " step " << j;
        }
    }
}

TEST(GrapeTest, SingleQubitXGateConverges)
{
    DeviceModel dev(1, {});
    GrapeOptimizer grape(dev);
    // Theoretical minimum: pi/(2 pi mu1) = 5 ns at mu1 = 0.1 GHz.
    GrapeResult result =
        grape.optimize(makeX(0).matrix(), 7.0, fastOptions());
    EXPECT_TRUE(result.converged)
        << "fidelity only reached " << result.fidelity;
    EXPECT_GE(result.fidelity, 0.999);

    // The returned pulse must reproduce the claimed fidelity.
    CMatrix u = pulseUnitary(dev, result.pulses);
    EXPECT_NEAR(processFidelity(u, makeX(0).matrix()), result.fidelity,
                1e-9);
}

TEST(GrapeTest, HadamardConverges)
{
    DeviceModel dev(1, {});
    GrapeOptimizer grape(dev);
    GrapeResult result =
        grape.optimize(makeH(0).matrix(), 12.0, fastOptions());
    EXPECT_TRUE(result.converged)
        << "fidelity only reached " << result.fidelity;
}

TEST(GrapeTest, RespectsAmplitudeLimits)
{
    DeviceModel dev(1, {});
    GrapeOptimizer grape(dev);
    GrapeResult result =
        grape.optimize(makeX(0).matrix(), 7.0, fastOptions());
    for (std::size_t k = 0; k < result.pulses.amplitudes.size(); ++k) {
        double limit = dev.channels()[k].maxAmplitude;
        for (double v : result.pulses.amplitudes[k])
            EXPECT_LE(std::abs(v), limit + 1e-12);
    }
}

TEST(GrapeTest, FidelityTraceIsRecorded)
{
    DeviceModel dev(1, {});
    GrapeOptimizer grape(dev);
    GrapeResult result =
        grape.optimize(makeH(0).matrix(), 10.0, fastOptions());
    ASSERT_FALSE(result.trace.empty());
    EXPECT_NEAR(result.trace.back(), result.fidelity, 1e-12);
    // Optimization should improve substantially over the starting point.
    EXPECT_GT(result.trace.back(), result.trace.front());
}

TEST(GrapeTest, TwoQubitIswapConverges)
{
    DeviceModel dev = DeviceModel::line(2);
    GrapeOptimizer grape(dev);
    GrapeOptions opt = fastOptions();
    opt.maxIterations = 500;
    // Interaction bound is 12.5 ns; give some slack.
    GrapeResult result =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, opt);
    EXPECT_TRUE(result.converged)
        << "fidelity only reached " << result.fidelity;

    CMatrix u = pulseUnitary(dev, result.pulses);
    EXPECT_GE(processFidelity(u, makeIswap(0, 1).matrix()), 0.999);
}

TEST(GrapeTest, TwoQubitCnotConverges)
{
    DeviceModel dev = DeviceModel::line(2);
    GrapeOptimizer grape(dev);
    GrapeOptions opt = fastOptions();
    opt.maxIterations = 600;
    GrapeResult result =
        grape.optimize(makeCnot(0, 1).matrix(), 25.0, opt);
    EXPECT_TRUE(result.converged)
        << "fidelity only reached " << result.fidelity;
}

TEST(GrapeTest, DurationSearchFindsXGateSpeedLimit)
{
    DeviceModel dev(1, {});
    GrapeOptimizer grape(dev);
    GrapeOptions opt = fastOptions();
    opt.maxIterations = 250;
    auto search =
        grape.minimizeDuration(makeX(0).matrix(), 3.0, 12.0, 1.0, opt);
    ASSERT_TRUE(search.found);
    // Quantum speed limit is 5 ns; allow discretization slack.
    EXPECT_GE(search.minimalDuration, 4.0);
    EXPECT_LE(search.minimalDuration, 8.0);
    EXPECT_FALSE(search.probes.empty());
}

TEST(GrapeTest, ImpossibleDurationFails)
{
    DeviceModel dev(1, {});
    GrapeOptimizer grape(dev);
    GrapeOptions opt = fastOptions();
    opt.maxIterations = 150;
    // 1 ns is far below the 5 ns speed limit for an X gate.
    GrapeResult result = grape.optimize(makeX(0).matrix(), 1.0, opt);
    EXPECT_FALSE(result.converged);
    EXPECT_LT(result.fidelity, 0.9);
}

} // namespace
} // namespace qaic
