/**
 * @file
 * Tests for pulse-program emission and the decoherence-aware fidelity
 * estimate.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "compiler/fidelity.h"
#include "compiler/pulseplan.h"
#include "control/pulse.h"
#include "verify/verify.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"

namespace qaic {
namespace {

PulsePlanOptions
fastPlanOptions()
{
    PulsePlanOptions options;
    options.grape.maxIterations = 600;
    options.grape.restarts = 2;
    options.grape.targetFidelity = 0.995;
    return options;
}

TEST(PulsePlanTest, TimelineImplementsCompiledCircuit)
{
    // Compile a small kernel, emit its full pulse program and integrate
    // the device-wide timeline: it must implement the compiled circuit.
    Circuit c(2);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    c.add(makeRz(1, 5.67));

    DeviceModel device = DeviceModel::line(2);
    Compiler compiler(device);
    CompilationResult r = compiler.compile(c, Strategy::kClsAggregation);

    PulsePlan plan = emitPulsePlan(r.schedule, device, fastPlanOptions());
    EXPECT_EQ(plan.slots.size(), r.schedule.ops.size());
    EXPECT_GT(plan.synthesizedCount, 0);
    EXPECT_GE(plan.worstFidelity, 0.99);

    CMatrix timeline_u = pulseUnitary(device, plan.timeline);
    CMatrix expect = r.physicalCircuit.unitary();
    EXPECT_GE(processFidelity(timeline_u, expect), 0.985);
}

TEST(PulsePlanTest, SlotsAlignWithSchedule)
{
    Circuit c = qaoaTriangleExample();
    DeviceModel device = DeviceModel::line(3);
    Compiler compiler(device);
    CompilationResult r = compiler.compile(c, Strategy::kClsAggregation);

    PulsePlanOptions options = fastPlanOptions();
    options.grapeWidth = 2; // Leave the 3-wide aggregate as an envelope.
    PulsePlan plan = emitPulsePlan(r.schedule, device, options);

    ASSERT_EQ(plan.slots.size(), r.schedule.ops.size());
    for (const PulseSlot &slot : plan.slots) {
        const ScheduledOp &op = r.schedule.ops[slot.opIndex];
        EXPECT_DOUBLE_EQ(slot.start, op.start);
        if (op.gate.width() > 2) {
            EXPECT_FALSE(slot.synthesized);
        }
    }
    // The timeline spans the whole schedule.
    EXPECT_GE(plan.duration() + 1e-9, r.schedule.makespan());
}

TEST(PulsePlanTest, WideInstructionGetsEnvelope)
{
    // A hand-built schedule with one wide aggregate: the envelope must
    // occupy its support drives for the scheduled duration.
    Gate wide = makeAggregate({makeCnot(0, 1), makeCnot(1, 2),
                               makeCnot(2, 3)},
                              "W", /*eager_matrix_width=*/0);
    Schedule schedule;
    schedule.ops.push_back({wide, 0.0, 20.0});

    DeviceModel device = DeviceModel::line(4);
    PulsePlanOptions options = fastPlanOptions();
    options.grapeWidth = 2;
    PulsePlan plan = emitPulsePlan(schedule, device, options);

    EXPECT_EQ(plan.synthesizedCount, 0);
    // Some drive amplitude must be present during [0, 20).
    double occupancy = 0.0;
    for (const auto &series : plan.timeline.amplitudes)
        for (double v : series)
            occupancy += std::abs(v);
    EXPECT_GT(occupancy, 0.0);
}

TEST(FidelityTest, HandComputedExposure)
{
    // One 100 ns op on q0 and one 50 ns op on q1 starting at t=25.
    Schedule schedule;
    schedule.ops.push_back({makeRx(0, 1.0), 0.0, 100.0});
    schedule.ops.push_back({makeRx(1, 1.0), 25.0, 50.0});

    CoherenceParams params;
    params.t2 = 1000.0;
    params.instructionError = 0.0;
    FidelityEstimate estimate = estimateFidelity(schedule, 2, params);
    EXPECT_NEAR(estimate.qubitExposureNs, 150.0, 1e-9);
    EXPECT_NEAR(estimate.decoherence,
                std::exp(-100.0 / 1000.0) * std::exp(-50.0 / 1000.0),
                1e-12);
    EXPECT_NEAR(estimate.total, estimate.decoherence, 1e-12);
}

TEST(FidelityTest, UntouchedQubitsDoNotDecohere)
{
    Schedule schedule;
    schedule.ops.push_back({makeRx(0, 1.0), 0.0, 10.0});
    FidelityEstimate estimate = estimateFidelity(schedule, 5);
    EXPECT_NEAR(estimate.qubitExposureNs, 10.0, 1e-9);
}

TEST(FidelityTest, InstructionErrorAccumulates)
{
    Schedule schedule;
    for (int i = 0; i < 10; ++i)
        schedule.ops.push_back({makeRx(0, 1.0), i * 10.0, 10.0});
    CoherenceParams params;
    params.instructionError = 0.01;
    FidelityEstimate estimate = estimateFidelity(schedule, 1, params);
    EXPECT_NEAR(estimate.control, std::pow(0.99, 10), 1e-12);
}

TEST(FidelityTest, AggregatedCompilationImprovesFidelity)
{
    // The paper's whole point: lower latency -> higher output fidelity.
    Circuit c = qaoaMaxcut(lineGraph(6));
    Compiler compiler(DeviceModel::gridFor(6));
    CompilationResult isa = compiler.compile(c, Strategy::kIsa);
    CompilationResult agg =
        compiler.compile(c, Strategy::kClsAggregation);

    CoherenceParams params;
    params.t2 = 5000.0; // Pessimistic qubits make the contrast visible.
    double f_isa =
        estimateFidelity(isa.schedule, compiler.device().numQubits(),
                         params)
            .total;
    double f_agg =
        estimateFidelity(agg.schedule, compiler.device().numQubits(),
                         params)
            .total;
    EXPECT_GT(f_agg, f_isa);
}

} // namespace
} // namespace qaic
