/**
 * @file
 * Tests for the persistent pulse library (oracle/pulselib.h): binary
 * round-trips, corruption rejection, concurrent-writer safety, the
 * oracle integration (durable hits, latency-only entries) and GRAPE
 * warm-starting.
 */
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "compiler/batch.h"
#include "compiler/pipeline.h"
#include "control/grape.h"
#include "ir/circuit.h"
#include "oracle/oracle.h"
#include "oracle/pulselib.h"

namespace qaic {
namespace {

/** Unique-ish scratch path under the build directory. */
std::string
scratchPath(const std::string &tag)
{
    return "pulselib_test_" + tag + ".qplb";
}

PulseLibraryEntry
sampleEntry(double latency, int channels, int steps)
{
    PulseLibraryEntry e;
    e.origin = "grape";
    e.latencyNs = latency;
    e.fidelity = 0.9991;
    e.iterations = 42;
    e.synthesisWallNs = 1.5e9;
    e.dt = 0.5;
    e.shapeKey = "s2:cnot.0.1;rz.1;cnot.0.1;";
    e.waveforms.assign(channels, {});
    for (int k = 0; k < channels; ++k)
        for (int j = 0; j < steps; ++j)
            e.waveforms[k].push_back(0.01 * (k + 1) * (j - steps / 2));
    return e;
}

TEST(PulseLibraryTest, RoundTripPreservesEverythingBitwise)
{
    const std::string path = scratchPath("roundtrip");
    std::remove(path.c_str());

    PulseLibrary lib(path);
    lib.insert("key-a", sampleEntry(17.5, 3, 32));
    lib.insert("key-b", sampleEntry(42.25, 5, 7));
    PulseLibraryEntry latency_only;
    latency_only.latencyNs = 9.5;
    lib.insert("key-c", latency_only);
    ASSERT_TRUE(lib.flush().isOk());

    PulseLibrary loaded(path);
    ASSERT_TRUE(loaded.load().isOk());
    EXPECT_EQ(loaded.size(), 3u);

    auto a = loaded.peek("key-a", "grape");
    ASSERT_TRUE(a.has_value());
    PulseLibraryEntry want = sampleEntry(17.5, 3, 32);
    EXPECT_EQ(a->origin, want.origin);
    EXPECT_EQ(a->latencyNs, want.latencyNs); // bitwise: binary format
    EXPECT_EQ(a->fidelity, want.fidelity);
    EXPECT_EQ(a->iterations, want.iterations);
    EXPECT_EQ(a->synthesisWallNs, want.synthesisWallNs);
    EXPECT_EQ(a->dt, want.dt);
    EXPECT_EQ(a->shapeKey, want.shapeKey);
    ASSERT_EQ(a->waveforms.size(), want.waveforms.size());
    for (std::size_t k = 0; k < want.waveforms.size(); ++k)
        EXPECT_EQ(a->waveforms[k], want.waveforms[k]);

    auto c = loaded.peek("key-c");
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->latencyNs, 9.5);
    EXPECT_FALSE(c->hasWaveforms());

    std::remove(path.c_str());
}

TEST(PulseLibraryTest, CorruptFilesAreQuarantinedWithDataLossStatus)
{
    const std::string path = scratchPath("corrupt");
    const std::string quarantine = path + ".corrupt";
    std::remove(path.c_str());
    std::remove(quarantine.c_str());

    PulseLibrary lib(path);
    lib.insert("key-a", sampleEntry(17.5, 3, 32));
    ASSERT_TRUE(lib.flush().isOk());

    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }
    ASSERT_GT(bytes.size(), 64u);

    auto write_variant = [&](const std::string &contents) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << contents;
    };
    auto exists = [](const std::string &p) {
        return static_cast<bool>(std::ifstream(p, std::ios::binary));
    };

    // Truncations at several depths (header, mid-entry, last byte):
    // kDataLoss, the bad file is moved aside, and the library stays
    // usable (cold). A second load then finds nothing (kNotFound).
    for (std::size_t cut : {std::size_t{3}, std::size_t{10},
                            bytes.size() / 2, bytes.size() - 1}) {
        write_variant(bytes.substr(0, cut));
        PulseLibrary fresh(path);
        Status loaded = fresh.load();
        EXPECT_EQ(loaded.code(), StatusCode::kDataLoss)
            << "truncated at " << cut << ": " << loaded.toString();
        EXPECT_NE(loaded.message().find(quarantine), std::string::npos)
            << "message must name the quarantine file: "
            << loaded.toString();
        EXPECT_EQ(fresh.size(), 0u);
        EXPECT_FALSE(exists(path)) << "corrupt file must be moved aside";
        EXPECT_TRUE(exists(quarantine));
        EXPECT_EQ(fresh.load().code(), StatusCode::kNotFound);
        std::remove(quarantine.c_str());
    }

    // A flipped payload byte breaks the checksum.
    std::string flipped = bytes;
    flipped[bytes.size() - 5] ^= 0x40;
    write_variant(flipped);
    PulseLibrary fresh(path);
    EXPECT_EQ(fresh.load().code(), StatusCode::kDataLoss);
    std::remove(quarantine.c_str());

    // Wrong magic and garbage are rejected the same way.
    write_variant("not a pulse library at all");
    EXPECT_EQ(PulseLibrary(path).load().code(), StatusCode::kDataLoss);
    std::remove(quarantine.c_str());

    // A crafted header (valid magic/version, absurd entry count, valid
    // checksum of the empty body) must fail cleanly instead of throwing
    // out of an untrusted reserve().
    std::string crafted = "QPLB";
    auto put = [&](auto value) {
        char raw[sizeof(value)];
        std::memcpy(raw, &value, sizeof(value));
        crafted.append(raw, sizeof(value));
    };
    put(std::uint32_t{1});                         // version
    put(std::uint64_t{1} << 61);                   // entry count
    put(std::uint64_t{1469598103934665603ull});    // FNV-1a of ""
    write_variant(crafted);
    EXPECT_EQ(PulseLibrary(path).load().code(), StatusCode::kDataLoss);
    std::remove(quarantine.c_str());

    // A missing file is kNotFound, not an error worth quarantining.
    std::remove(path.c_str());
    EXPECT_EQ(PulseLibrary(path).load().code(), StatusCode::kNotFound);
    EXPECT_FALSE(exists(quarantine));
}

TEST(PulseLibraryTest, FlushMergesInsteadOfClobbering)
{
    const std::string path = scratchPath("merge");
    std::remove(path.c_str());

    // Writer A flushes, then writer B (which never saw A's entries)
    // flushes the same file: B's flush must fold A's work in.
    PulseLibrary a(path);
    a.insert("key-a", sampleEntry(11.0, 2, 8));
    ASSERT_TRUE(a.flush().isOk());

    PulseLibrary b(path);
    b.insert("key-b", sampleEntry(22.0, 2, 8));
    ASSERT_TRUE(b.flush().isOk());

    PulseLibrary check(path);
    ASSERT_TRUE(check.load().isOk());
    EXPECT_EQ(check.size(), 2u);
    EXPECT_TRUE(check.peek("key-a", "grape").has_value());
    EXPECT_TRUE(check.peek("key-b", "grape").has_value());
    std::remove(path.c_str());
}

TEST(PulseLibraryTest, ConcurrentWritersNeverCorruptTheFile)
{
    const std::string path = scratchPath("two_writers");
    std::remove(path.c_str());

    constexpr int kFlushes = 12;
    PulseLibrary left(path);
    PulseLibrary right(path);
    auto writer = [&](PulseLibrary &lib, const std::string &prefix) {
        for (int i = 0; i < kFlushes; ++i) {
            lib.insert(prefix + std::to_string(i),
                       sampleEntry(10.0 + i, 2, 4));
            EXPECT_TRUE(lib.flush().isOk());
        }
    };
    std::thread a(writer, std::ref(left), std::string("left-"));
    std::thread b(writer, std::ref(right), std::string("right-"));
    a.join();
    b.join();

    // Whatever interleaving the racing flushes produced, the file is a
    // complete, valid library (atomic rename: readers never observe a
    // partial write).
    {
        PulseLibrary check(path);
        ASSERT_TRUE(check.load().isOk());
        EXPECT_GE(check.size(), static_cast<std::size_t>(kFlushes));
    }

    // The very last racing rename may predate the other writer's final
    // entry; one more flush from each side deterministically converges
    // the file to the union (each flush folds the file back in first).
    ASSERT_TRUE(left.flush().isOk());
    ASSERT_TRUE(right.flush().isOk());
    PulseLibrary check(path);
    ASSERT_TRUE(check.load().isOk());
    EXPECT_EQ(check.size(), static_cast<std::size_t>(2 * kFlushes));
    EXPECT_TRUE(
        check.peek("left-" + std::to_string(kFlushes - 1), "grape")
            .has_value());
    EXPECT_TRUE(
        check.peek("right-" + std::to_string(kFlushes - 1), "grape")
            .has_value());
    std::remove(path.c_str());
}

TEST(PulseLibraryTest, RichnessRuleKeepsWaveforms)
{
    PulseLibrary lib; // in-memory
    lib.insert("k", sampleEntry(17.5, 2, 8));
    PulseLibraryEntry latency_only;
    latency_only.origin = "grape"; // same record as the rich entry
    latency_only.latencyNs = 17.5;
    lib.insert("k", latency_only);
    auto entry = lib.peek("k", "grape");
    ASSERT_TRUE(entry.has_value());
    EXPECT_TRUE(entry->hasWaveforms())
        << "latency-only insert clobbered stored waveforms";
}

TEST(PulseLibraryTest, NearestServesOnlyLoadedEntries)
{
    const std::string path = scratchPath("nearest");
    std::remove(path.c_str());

    PulseLibrary lib(path);
    lib.insert("k", sampleEntry(17.5, 2, 8));
    // In-process inserts are deliberately not warm-start candidates:
    // the shape index is frozen at load() time so concurrent batch
    // workers' store order can never change another compilation's
    // result.
    EXPECT_FALSE(lib.nearest("s2:cnot.0.1;rz.1;cnot.0.1;").has_value());
    ASSERT_TRUE(lib.flush().isOk());

    PulseLibrary loaded(path);
    ASSERT_TRUE(loaded.load().isOk());
    auto warm = loaded.nearest("s2:cnot.0.1;rz.1;cnot.0.1;");
    ASSERT_TRUE(warm.has_value());
    EXPECT_TRUE(warm->hasWaveforms());
    EXPECT_FALSE(loaded.nearest("s2:iswap.0.1;").has_value());
    EXPECT_EQ(loaded.stats().warmStarts, 1u);
    std::remove(path.c_str());
}

// --- GRAPE warm-starting ---------------------------------------------

GrapeOptions
quickGrapeOptions()
{
    GrapeOptions options;
    options.maxIterations = 200;
    options.restarts = 1;
    return options;
}

TEST(GrapeWarmStartTest, WarmStartIsDeterministicAndAtLeastAsGood)
{
    // fig4's G3 block (CNOT-Rz-CNOT) on a coupled pair.
    DeviceModel pair = DeviceModel::line(2);
    GrapeOptimizer grape(pair);
    Gate block = makeAggregate(
        {makeCnot(0, 1), makeRz(1, 5.67), makeCnot(0, 1)}, "G3");
    GrapeOptions options = quickGrapeOptions();

    GrapeResult cold = grape.optimize(block.matrix(), 16.0, options);

    GrapeOptions warm_options = options;
    warm_options.warmStart = &cold.pulses.amplitudes;
    GrapeResult warm = grape.optimize(block.matrix(), 16.0, warm_options);

    // Seeded with the cold optimum, the warm run can only match or
    // improve it (up to the tanh clamp round-trip on saturated
    // amplitudes), and must converge (far) faster.
    EXPECT_GE(warm.fidelity, cold.fidelity - 1e-6);
    EXPECT_LE(warm.iterations, cold.iterations);

    GrapeResult again = grape.optimize(block.matrix(), 16.0, warm_options);
    EXPECT_EQ(warm.fidelity, again.fidelity);
    EXPECT_EQ(warm.iterations, again.iterations);
    ASSERT_EQ(warm.pulses.amplitudes.size(),
              again.pulses.amplitudes.size());
    for (std::size_t k = 0; k < warm.pulses.amplitudes.size(); ++k)
        EXPECT_EQ(warm.pulses.amplitudes[k], again.pulses.amplitudes[k])
            << "warm-started GRAPE must be bitwise deterministic";
}

TEST(GrapeWarmStartTest, ResamplesAcrossDurations)
{
    // A warm start recorded at one duration must still help (and never
    // crash) when the probe uses a different step count.
    DeviceModel pair = DeviceModel::line(2);
    GrapeOptimizer grape(pair);
    CMatrix target = makeIswap(0, 1).matrix();
    GrapeOptions options = quickGrapeOptions();

    GrapeResult cold = grape.optimize(target, 16.0, options);
    ASSERT_TRUE(cold.converged);

    GrapeOptions warm_options = options;
    warm_options.warmStart = &cold.pulses.amplitudes;
    GrapeResult longer = grape.optimize(target, 20.0, warm_options);
    EXPECT_TRUE(longer.converged);
    GrapeResult shorter = grape.optimize(target, 14.0, warm_options);
    EXPECT_GE(shorter.fidelity, 0.5); // still a sane optimization
}

// --- Oracle integration ----------------------------------------------

GrapeOracleOptions
quickOracleOptions()
{
    GrapeOracleOptions options;
    options.grape.maxIterations = 150;
    options.grape.restarts = 1;
    options.resolution = 1.0;
    return options;
}

TEST(PulseLibraryOracleTest, GrapeOracleReplaysExactHitsBitwise)
{
    const std::string path = scratchPath("oracle_replay");
    std::remove(path.c_str());

    double first = 0.0, second = 0.0;
    {
        auto lib = std::make_shared<PulseLibrary>(path);
        GrapeLatencyOracle oracle(quickOracleOptions(), {}, lib);
        first = oracle.latencyNs(makeIswap(0, 1));
        EXPECT_GT(first, 0.0);
        EXPECT_GE(lib->stats().stores, 1u);
        ASSERT_TRUE(lib->flush().isOk());
    }
    {
        // A fresh process: same library file, fresh oracle.
        auto lib = std::make_shared<PulseLibrary>(path);
        ASSERT_TRUE(lib->load().isOk());
        GrapeLatencyOracle oracle(quickOracleOptions(), {}, lib);
        second = oracle.latencyNs(makeIswap(0, 1));
        EXPECT_EQ(lib->stats().hits, 1u)
            << "second run must be answered from the library";
    }
    EXPECT_EQ(first, second)
        << "library replay must reproduce the latency bitwise";
    std::remove(path.c_str());
}

TEST(PulseLibraryOracleTest, ShapeMatchWarmStartsAcrossRuns)
{
    const std::string path = scratchPath("warmstart");
    std::remove(path.c_str());
    {
        auto lib = std::make_shared<PulseLibrary>(path);
        GrapeLatencyOracle oracle(quickOracleOptions(), {}, lib);
        double a = oracle.latencyNs(makeRzz(0, 1, 1.0));
        EXPECT_GT(a, 0.0);
        // Warm starts never draw on same-run inserts (that would make
        // concurrent batch results depend on worker store order).
        oracle.latencyNs(makeRzz(0, 1, 1.5));
        EXPECT_EQ(lib->stats().warmStarts, 0u);
        ASSERT_TRUE(lib->flush().isOk());
    }
    {
        auto lib = std::make_shared<PulseLibrary>(path);
        ASSERT_TRUE(lib->load().isOk());
        GrapeLatencyOracle oracle(quickOracleOptions(), {}, lib);
        double b = oracle.latencyNs(makeRzz(0, 1, 2.0));
        EXPECT_GT(b, 0.0);
        EXPECT_GE(lib->stats().warmStarts, 1u)
            << "same-shape different-angle gate should warm-start from "
               "the loaded library";
    }
    std::remove(path.c_str());
}

TEST(PulseLibraryOracleTest, AnalyticEntriesDoNotPoisonGrapeMode)
{
    // An analytic-mode run records model estimates under the same keys
    // a GRAPE run uses; the GRAPE oracle must re-synthesize, not replay
    // them as if they were optimal-control results.
    auto lib = std::make_shared<PulseLibrary>();
    CachingOracle analytic(std::make_shared<AnalyticOracle>(), lib);
    analytic.latencyNs(makeIswap(0, 1));
    std::string key = unitaryFingerprint(makeIswap(0, 1).matrix());
    std::string analytic_tag = analyticOriginTag({});
    ASSERT_TRUE(lib->peek(key, analytic_tag).has_value());

    GrapeLatencyOracle grape(quickOracleOptions(), {}, lib);
    grape.latencyNs(makeIswap(0, 1));
    auto entry = lib->peek(key, grape.originTag());
    ASSERT_TRUE(entry.has_value())
        << "GRAPE must have synthesized its own record";
    EXPECT_TRUE(entry->hasWaveforms());
    // The analytic record coexists — neither context evicted the other.
    EXPECT_TRUE(lib->peek(key, analytic_tag).has_value());
    EXPECT_FALSE(lib->peek(key, analytic_tag)->hasWaveforms());
}

TEST(PulseLibraryOracleTest, DifferentSynthesisBudgetsDoNotReplay)
{
    // A latency found under one GRAPE budget is not the answer another
    // budget would compute; sharing a file across configurations must
    // re-synthesize, mirroring compileBatch's in-process mu1/mu2 check.
    const std::string path = scratchPath("budget");
    std::remove(path.c_str());
    {
        auto lib = std::make_shared<PulseLibrary>(path);
        GrapeLatencyOracle oracle(quickOracleOptions(), {}, lib);
        oracle.latencyNs(makeIswap(0, 1));
        ASSERT_TRUE(lib->flush().isOk());
    }
    {
        auto lib = std::make_shared<PulseLibrary>(path);
        ASSERT_TRUE(lib->load().isOk());
        GrapeOracleOptions bigger = quickOracleOptions();
        bigger.grape.maxIterations += 50;
        GrapeLatencyOracle oracle(bigger, {}, lib);
        oracle.latencyNs(makeIswap(0, 1));
        EXPECT_EQ(lib->stats().hits, 0u)
            << "a different budget's entry must not be served";
        std::string key = unitaryFingerprint(makeIswap(0, 1).matrix());
        EXPECT_TRUE(lib->peek(key, oracle.originTag()).has_value());
        // The original budget's record survives alongside — a config
        // change never evicts another run's work from a shared file.
        GrapeLatencyOracle quick_oracle(quickOracleOptions(), {},
                                        nullptr);
        EXPECT_TRUE(lib->peek(key, quick_oracle.originTag()).has_value());
    }
    std::remove(path.c_str());
}

TEST(PulseLibraryOracleTest, OriginMismatchedEntriesAreNotServed)
{
    auto lib = std::make_shared<PulseLibrary>();
    Gate g = makeH(0);
    PulseLibraryEntry bogus;
    bogus.origin = "grape";
    bogus.latencyNs = 123.0;
    lib->insert(unitaryFingerprint(g.matrix()), bogus);

    CachingOracle oracle(std::make_shared<AnalyticOracle>(), lib);
    EXPECT_NE(oracle.latencyNs(g), 123.0);
    EXPECT_EQ(oracle.stats().libraryHits, 0u);
}

TEST(PulseLibraryOracleTest, CachingOracleUsesDurableLatencies)
{
    const std::string path = scratchPath("caching");
    std::remove(path.c_str());

    // An analytic run records latency-only entries durably...
    std::vector<Gate> gates = {makeH(0), makeCnot(0, 1),
                               makeRx(0, 0.7), makeSwap(0, 1)};
    std::vector<double> first;
    {
        auto lib = std::make_shared<PulseLibrary>(path);
        CachingOracle oracle(std::make_shared<AnalyticOracle>(), lib);
        for (const Gate &g : gates)
            first.push_back(oracle.latencyNs(g));
        ASSERT_TRUE(lib->flush().isOk());
    }
    // ...which a later process serves without consulting the inner
    // oracle (visible as libraryHits in the consistent stats snapshot).
    {
        auto lib = std::make_shared<PulseLibrary>(path);
        ASSERT_TRUE(lib->load().isOk());
        CachingOracle oracle(std::make_shared<AnalyticOracle>(), lib);
        for (std::size_t i = 0; i < gates.size(); ++i)
            EXPECT_EQ(oracle.latencyNs(gates[i]), first[i]);
        CachingOracle::Stats stats = oracle.stats();
        EXPECT_EQ(stats.libraryHits, gates.size());
        EXPECT_EQ(stats.misses, gates.size());
        EXPECT_EQ(stats.hits, 0u);
    }
    std::remove(path.c_str());
}

TEST(PulseLibraryOracleTest, PipelineThreadsLibraryPathThrough)
{
    const std::string path = scratchPath("pipeline");
    std::remove(path.c_str());

    CompilerOptions options;
    options.pulseLibraryPath = path;
    DeviceModel device = DeviceModel::gridFor(4);
    CompilerOptions resolved = resolveCompilerOptions(device, options);
    EXPECT_EQ(resolved.pulseLibraryPath, path);

    Circuit circuit(4);
    circuit.add(makeH(0));
    circuit.add(makeCnot(0, 1));
    circuit.add(makeCnot(2, 3));
    circuit.add(makeRz(3, 0.4));

    double first = 0.0;
    {
        Compiler compiler(device, options);
        first = compiler.compile(circuit, Strategy::kClsAggregation)
                    .latencyNs;
        auto lib = compiler.oracleHandle()->library();
        ASSERT_NE(lib, nullptr);
        EXPECT_GT(lib->size(), 0u);
    } // destruction flushes
    {
        Compiler compiler(device, options);
        double second =
            compiler.compile(circuit, Strategy::kClsAggregation)
                .latencyNs;
        EXPECT_EQ(first, second);
        auto lib = compiler.oracleHandle()->library();
        ASSERT_NE(lib, nullptr);
        EXPECT_GT(lib->stats().loaded, 0u)
            << "second compiler must have loaded the flushed library";
        EXPECT_GT(compiler.oracleHandle()->stats().libraryHits, 0u);
    }
    std::remove(path.c_str());
}

TEST(PulseLibraryOracleTest, BatchCompilationSharesOneLibrary)
{
    const std::string path = scratchPath("batch");
    std::remove(path.c_str());

    CompilerOptions options;
    options.pulseLibraryPath = path;
    DeviceModel device = DeviceModel::gridFor(4);
    Circuit circuit(4);
    circuit.add(makeH(0));
    circuit.add(makeCnot(0, 1));
    std::vector<Circuit> circuits(4, circuit);

    std::vector<CompilationResult> results = unwrapBatch(compileBatch(
        device, circuits, Strategy::kClsAggregation, options, 4));
    ASSERT_EQ(results.size(), 4u);
    for (const CompilationResult &r : results)
        EXPECT_EQ(r.latencyNs, results.front().latencyNs);
    // The shared oracle flushed on destruction inside compileBatch;
    // the library file must now exist and be loadable.
    PulseLibrary check(path);
    EXPECT_TRUE(check.load().isOk());
    EXPECT_GT(check.size(), 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace qaic
