/**
 * @file
 * Tests for commutativity detection (Table 2 of the paper), commutation
 * groups, and gate mobility.
 */
#include <gtest/gtest.h>

#include "gdg/commute.h"
#include "gdg/gdg.h"
#include "ir/circuit.h"
#include "verify/verify.h"

namespace qaic {
namespace {

// ---------------------------------------------------------------- Table 2

TEST(CommuteTest, DisjointGatesCommute)
{
    CommutationChecker checker;
    EXPECT_TRUE(checker.commute(makeCnot(0, 1), makeCnot(2, 3)));
    EXPECT_TRUE(checker.commute(makeH(0), makeRx(5, 0.3)));
}

TEST(CommuteTest, ControlCommutesWithRz)
{
    CommutationChecker checker;
    // Table 2 top-right: Rz on the control passes through a CNOT.
    EXPECT_TRUE(checker.commute(makeRz(0, 1.1), makeCnot(0, 1)));
    // But not on the target.
    EXPECT_FALSE(checker.commute(makeRz(1, 1.1), makeCnot(0, 1)));
}

TEST(CommuteTest, DiagonalGatesCommute)
{
    CommutationChecker checker;
    // Table 2 bottom-left: diagonal unitaries commute.
    EXPECT_TRUE(checker.commute(makeRzz(0, 1, 0.7), makeRzz(1, 2, 0.9)));
    EXPECT_TRUE(checker.commute(makeCz(0, 1), makeRz(1, 0.3)));
    EXPECT_TRUE(checker.commute(makeT(0), makeS(0)));
}

TEST(CommuteTest, CnotsWithSharedControlCommute)
{
    CommutationChecker checker;
    // Table 2 bottom-right: CNOTs with disjoint controls... and the dual:
    // shared control, distinct targets.
    EXPECT_TRUE(checker.commute(makeCnot(0, 1), makeCnot(0, 2)));
    // Shared target, distinct controls also commute (X's commute).
    EXPECT_TRUE(checker.commute(makeCnot(0, 2), makeCnot(1, 2)));
    // Chained CNOTs do not.
    EXPECT_FALSE(checker.commute(makeCnot(0, 1), makeCnot(1, 2)));
}

TEST(CommuteTest, MatrixFallbackCases)
{
    CommutationChecker checker;
    // X on the target commutes with CNOT (matrix check, no rule).
    EXPECT_TRUE(checker.commute(makeX(1), makeCnot(0, 1)));
    EXPECT_FALSE(checker.commute(makeX(0), makeCnot(0, 1)));
    // Same-qubit rotations about the same axis commute.
    EXPECT_TRUE(checker.commute(makeRx(0, 0.4), makeRx(0, 1.9)));
    EXPECT_FALSE(checker.commute(makeRx(0, 0.4), makeRz(0, 1.9)));
}

TEST(CommuteTest, DiagonalBlocksCommute)
{
    CommutationChecker checker;
    // The paper's key case: CNOT-Rz-CNOT blocks commute with each other
    // even when sharing qubits, though their members do not.
    Gate b01 = makeAggregate(
        {makeCnot(0, 1), makeRz(1, 5.67), makeCnot(0, 1)}, "b01");
    Gate b12 = makeAggregate(
        {makeCnot(1, 2), makeRz(2, 5.67), makeCnot(1, 2)}, "b12");
    EXPECT_TRUE(b01.isDiagonal());
    EXPECT_TRUE(checker.commute(b01, b12));
    EXPECT_FALSE(checker.commute(makeCnot(0, 1), makeCnot(1, 2)));
}

TEST(CommuteTest, CacheIsUsed)
{
    CommutationChecker checker;
    checker.commute(makeX(1), makeCnot(0, 1));
    std::size_t checks = checker.matrixChecks();
    checker.commute(makeX(1), makeCnot(0, 1));
    EXPECT_EQ(checker.matrixChecks(), checks);
    EXPECT_GE(checker.cacheSize(), 1u);
}

TEST(CommuteTest, WideAggregatesFallBackConservatively)
{
    CommutationChecker checker;
    // Joint support of 7 qubits exceeds the matrix-check limit; without
    // an applicable rule the checker must say "no" (safe false
    // dependence), not guess.
    std::vector<Gate> chain;
    for (int q = 0; q + 1 < 6; ++q)
        chain.push_back(makeCnot(q, q + 1));
    chain.push_back(makeH(0));
    Gate wide = makeAggregate(chain, "wide", /*eager_matrix_width=*/0);
    EXPECT_FALSE(checker.commute(wide, makeCnot(5, 6)));
}

TEST(ActsDiagonallyTest, PerQubitClassification)
{
    EXPECT_TRUE(actsDiagonallyOn(makeCnot(0, 1), 0));
    EXPECT_FALSE(actsDiagonallyOn(makeCnot(0, 1), 1));
    EXPECT_TRUE(actsDiagonallyOn(makeCcx(0, 1, 2), 0));
    EXPECT_TRUE(actsDiagonallyOn(makeCcx(0, 1, 2), 1));
    EXPECT_FALSE(actsDiagonallyOn(makeCcx(0, 1, 2), 2));
    EXPECT_TRUE(actsDiagonallyOn(makeRz(0, 1.0), 0));
    // Not acting on a qubit counts as diagonal there.
    EXPECT_TRUE(actsDiagonallyOn(makeH(0), 3));
}

// ------------------------------------------------------------------- GDG

TEST(GdgTest, QaoaBlocksShareGroups)
{
    // Two commuting ZZ blocks on overlapping qubits end up in the same
    // commutation group on the shared qubit.
    Circuit c(3);
    c.add(makeRzz(0, 1, 0.5));
    c.add(makeRzz(1, 2, 0.5));
    CommutationChecker checker;
    Gdg gdg(c, &checker);
    EXPECT_EQ(gdg.groupsOnQubit(1).size(), 1u);
    EXPECT_TRUE(gdg.reorderable(0, 1));
}

TEST(GdgTest, NonCommutingGatesSplitGroups)
{
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRz(1, 0.3)); // On the target: does not commute.
    CommutationChecker checker;
    Gdg gdg(c, &checker);
    EXPECT_EQ(gdg.groupsOnQubit(1).size(), 2u);
    EXPECT_FALSE(gdg.reorderable(0, 1));
}

TEST(GdgTest, RzTravelsThroughControl)
{
    // The paper's example: an Rz on the control is in the same group as
    // both CNOTs of a CNOT-Rz-CNOT structure on that qubit.
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRz(0, 0.7));
    c.add(makeCnot(0, 1));
    CommutationChecker checker;
    Gdg gdg(c, &checker);
    EXPECT_EQ(gdg.groupsOnQubit(0).size(), 1u);
    // On the target qubit the two CNOTs commute with each other too
    // (they are identical), so one group there as well.
    EXPECT_EQ(gdg.groupsOnQubit(1).size(), 1u);
}

TEST(GdgTest, DepthReflectsCommutationFreedom)
{
    // Serial chain without commutativity: depth = 3.
    Circuit serial(3);
    serial.add(makeCnot(0, 1));
    serial.add(makeCnot(1, 2));
    serial.add(makeCnot(0, 1));
    CommutationChecker checker;
    EXPECT_EQ(Gdg(serial, &checker).depth(), 3);

    // Commuting diagonal blocks still serialize on the shared qubit but
    // the GDG records the reordering freedom.
    Circuit diag(3);
    diag.add(makeRzz(0, 1, 0.5));
    diag.add(makeRzz(1, 2, 0.5));
    Gdg gdg(diag, &checker);
    EXPECT_TRUE(gdg.reorderable(0, 1));
    EXPECT_EQ(gdg.depth(), 2); // Qubit 1 is used by both.
}

// -------------------------------------------------------------- Mobility

TEST(MobilityTest, AdjacentGatesAlwaysMovable)
{
    Circuit c(2);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    CommutationChecker checker;
    EXPECT_TRUE(canMakeAdjacent(c, 0, 1, &checker));
}

TEST(MobilityTest, CommutingInterveningGate)
{
    // CNOT(0,1), Rz(0), CNOT(0,1): the two CNOTs can be made adjacent by
    // sliding the Rz (it commutes with both).
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRz(0, 0.7));
    c.add(makeCnot(0, 1));
    CommutationChecker checker;
    EXPECT_TRUE(canMakeAdjacent(c, 0, 2, &checker));

    std::size_t at = 0;
    Circuit moved = makeAdjacent(c, 0, 2, &checker, &at);
    EXPECT_TRUE(circuitsEquivalent(c, moved));
    EXPECT_EQ(moved.gates()[at].kind, GateKind::kCnot);
    EXPECT_EQ(moved.gates()[at + 1].kind, GateKind::kCnot);
}

TEST(MobilityTest, BlockingInterveningGate)
{
    // An Rz on the *target* blocks merging the CNOTs.
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRz(1, 0.7));
    c.add(makeCnot(0, 1));
    CommutationChecker checker;
    EXPECT_FALSE(canMakeAdjacent(c, 0, 2, &checker));
}

TEST(MobilityTest, DisjointGatesNeverBlock)
{
    Circuit c(4);
    c.add(makeCnot(0, 1));
    c.add(makeCnot(2, 3));
    c.add(makeH(2));
    c.add(makeCnot(0, 1));
    CommutationChecker checker;
    EXPECT_TRUE(canMakeAdjacent(c, 0, 3, &checker));
    std::size_t at = 0;
    Circuit moved = makeAdjacent(c, 0, 3, &checker, &at);
    EXPECT_TRUE(circuitsEquivalent(c, moved));
}

} // namespace
} // namespace qaic
