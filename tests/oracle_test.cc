/**
 * @file
 * Tests for the latency oracles: analytic-model anchor values, folding
 * behaviour, consistency with the in-repo GRAPE unit, and caching.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "ir/circuit.h"
#include "oracle/oracle.h"

namespace qaic {
namespace {

TEST(AnalyticOracleTest, SingleQubitAnchors)
{
    AnalyticOracle oracle;
    const AnalyticModelParams &p = oracle.params();

    // In-plane rotation: content = theta / (2 pi mu1).
    double rx = oracle.singleQubitContent(makeRx(0, 1.26).matrix());
    EXPECT_NEAR(rx, 1.26 / (2 * M_PI * p.mu1), 1e-9);

    // Z rotations fold the angle and pay the z-detour.
    double rz = oracle.singleQubitContent(makeRz(0, 5.67).matrix());
    double folded = 2 * M_PI - 5.67;
    EXPECT_NEAR(rz, (folded + p.zDetour) / (2 * M_PI * p.mu1), 1e-6);

    // Identity costs nothing.
    EXPECT_NEAR(oracle.singleQubitContent(makeId(0).matrix()), 0.0, 1e-12);

    // Hadamard: pi rotation with n_z^2 = 1/2.
    double h = oracle.singleQubitContent(makeH(0).matrix());
    EXPECT_NEAR(h, (M_PI + 0.5 * p.zDetour) / (2 * M_PI * p.mu1), 1e-6);
}

TEST(AnalyticOracleTest, TwoQubitAnchors)
{
    AnalyticOracle oracle;
    // iSWAP is XY-native: pure interaction bound, 12.5 ns at mu2 = 0.02.
    EXPECT_NEAR(oracle.twoQubitContent(makeIswap(0, 1).matrix()), 12.5,
                1e-6);
    // CNOT shares the bound but pays local dressing.
    EXPECT_NEAR(oracle.twoQubitContent(makeCnot(0, 1).matrix()),
                12.5 + oracle.params().localDressing, 1e-6);
    // SWAP: 1.5x the iSWAP interaction time.
    EXPECT_NEAR(oracle.twoQubitContent(makeSwap(0, 1).matrix()),
                18.75 + oracle.params().localDressing, 1e-6);
}

TEST(AnalyticOracleTest, LatencyAddsRampAndGrid)
{
    AnalyticOracle oracle;
    double t = oracle.latencyNs(makeIswap(0, 1));
    EXPECT_NEAR(t, oracle.params().rampOverhead + 12.5, 0.5);
    // Grid-aligned.
    EXPECT_NEAR(std::fmod(t, oracle.params().dtGrid), 0.0, 1e-9);
}

TEST(AnalyticOracleTest, IdentityIsFree)
{
    AnalyticOracle oracle;
    EXPECT_DOUBLE_EQ(oracle.latencyNs(makeId(0)), 0.0);
}

TEST(AnalyticOracleTest, CnotRzCnotFoldsToSmallZZ)
{
    AnalyticOracle oracle;
    Gate block = makeAggregate(
        {makeCnot(0, 1), makeRz(1, 5.67), makeCnot(0, 1)}, "G3");
    double block_time = oracle.latencyNs(block);

    // Must be far below the sequential cost of its members.
    double sequential = oracle.latencyNs(makeCnot(0, 1)) * 2 +
                        oracle.latencyNs(makeRz(1, 5.67));
    EXPECT_LT(block_time, sequential / 3.0);

    // And equal to the direct Rzz pulse cost (same unitary).
    double rzz_time = oracle.latencyNs(makeRzz(0, 1, 5.67));
    EXPECT_NEAR(block_time, rzz_time, 1e-9);
}

TEST(AnalyticOracleTest, InversePairsCancelInsideAggregates)
{
    AnalyticOracle oracle;
    Gate cancel = makeAggregate({makeCnot(0, 1), makeCnot(0, 1)}, "I");
    EXPECT_DOUBLE_EQ(oracle.latencyNs(cancel), 0.0);
}

TEST(AnalyticOracleTest, AggregationBeatsSequentialExecution)
{
    AnalyticOracle oracle;
    // A serial 3-qubit chain: aggregate must cost less than the sum of
    // its members (overhead elision + 1q folding), but at least the
    // two-qubit interaction content of the chain.
    std::vector<Gate> members = {makeH(0), makeCnot(0, 1), makeH(1),
                                 makeCnot(1, 2), makeH(2)};
    Gate agg = makeAggregate(members, "chain");
    double agg_time = oracle.latencyNs(agg);
    double sum = 0.0;
    for (const Gate &m : members)
        sum += oracle.latencyNs(m);
    EXPECT_LT(agg_time, sum);
    // At least the busiest edge's interaction bound must remain.
    EXPECT_GT(agg_time, 12.5);
}

TEST(AnalyticOracleTest, ParallelMembersOverlapInsideAggregate)
{
    AnalyticOracle oracle;
    // Two disjoint CNOTs inside one aggregate run concurrently: the
    // content is one CNOT's, not two.
    Gate parallel = makeAggregate({makeCnot(0, 1), makeCnot(2, 3)}, "P");
    Gate serial = makeAggregate({makeCnot(0, 1), makeCnot(1, 2)}, "S");
    EXPECT_LT(oracle.latencyNs(parallel), oracle.latencyNs(serial));
}

TEST(AnalyticOracleTest, MonotoneInRotationAngle)
{
    AnalyticOracle oracle;
    double prev = 0.0;
    for (double theta = 0.2; theta <= M_PI; theta += 0.2) {
        double t = oracle.latencyNs(makeRx(0, theta));
        EXPECT_GE(t, prev - 1e-9);
        prev = t;
    }
}

TEST(AnalyticOracleTest, RejectsRawToffoli)
{
    AnalyticOracle oracle;
    EXPECT_DEATH(oracle.latencyNs(makeCcx(0, 1, 2)), "decompose");
}

class GrapeConsistency : public ::testing::TestWithParam<int>
{
  protected:
    static Gate
    gateFor(int index)
    {
        switch (index) {
          case 0: return makeRx(0, 1.26);
          case 1: return makeRz(0, 5.67);
          case 2: return makeH(0);
          case 3: return makeIswap(0, 1);
          case 4: return makeCnot(0, 1);
          default:
            return makeAggregate(
                {makeCnot(0, 1), makeRz(1, 5.67), makeCnot(0, 1)}, "G3");
        }
    }
};

TEST_P(GrapeConsistency, ModelTracksGrapeMinimum)
{
    Gate gate = gateFor(GetParam());
    AnalyticOracle model;
    double predicted = model.latencyNs(gate);

    GrapeOracleOptions gopt;
    gopt.grape.maxIterations = 350;
    gopt.grape.restarts = 2;
    gopt.resolution = 1.0;
    GrapeLatencyOracle grape(gopt);
    double measured = grape.latencyNs(gate);

    // The piecewise-constant GRAPE optimum has no ramp; the model sits at
    // most one ramp + modest slack above it, and never below it by more
    // than the search resolution + dressing slack.
    EXPECT_LE(measured, predicted + 1.0)
        << "model below GRAPE minimum: " << predicted << " vs "
        << measured;
    EXPECT_LE(predicted, measured + model.params().rampOverhead + 6.0)
        << "model too pessimistic: " << predicted << " vs " << measured;
}

INSTANTIATE_TEST_SUITE_P(Gates, GrapeConsistency,
                         ::testing::Range(0, 6));

TEST(CachingOracleTest, HitsOnRepeatedStructures)
{
    auto inner = std::make_shared<AnalyticOracle>();
    CachingOracle cache(inner);
    // The same block on different qubit pairs shares one entry.
    Gate a = makeAggregate(
        {makeCnot(0, 1), makeRz(1, 1.1), makeCnot(0, 1)}, "A");
    Gate b = makeAggregate(
        {makeCnot(4, 7), makeRz(7, 1.1), makeCnot(4, 7)}, "B");
    double ta = cache.latencyNs(a);
    double tb = cache.latencyNs(b);
    EXPECT_DOUBLE_EQ(ta, tb);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(CachingOracleTest, DistinguishesDifferentAngles)
{
    auto inner = std::make_shared<AnalyticOracle>();
    CachingOracle cache(inner);
    double t1 = cache.latencyNs(makeRx(0, 0.5));
    double t2 = cache.latencyNs(makeRx(0, 2.5));
    EXPECT_NE(t1, t2);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(FingerprintTest, PhaseInvariance)
{
    CMatrix u = makeCnot(0, 1).matrix();
    CMatrix v = u * std::exp(Cmplx(0, 0.9));
    EXPECT_EQ(unitaryFingerprint(u), unitaryFingerprint(v));
    EXPECT_NE(unitaryFingerprint(u),
              unitaryFingerprint(makeSwap(0, 1).matrix()));
}

TEST(FingerprintTest, StructuralRelabelingInvariance)
{
    Gate a = makeAggregate({makeH(2), makeCnot(2, 5)}, "A");
    Gate b = makeAggregate({makeH(0), makeCnot(0, 9)}, "B");
    EXPECT_EQ(structuralFingerprint(a), structuralFingerprint(b));
    Gate c = makeAggregate({makeH(5), makeCnot(2, 5)}, "C");
    EXPECT_NE(structuralFingerprint(a), structuralFingerprint(c));
}

TEST(FingerprintTest, StableAcrossGlobalPhases)
{
    // Phase-equivalent unitaries must share one key for every phase,
    // including ones that negate entries or rotate the anchor through
    // the sign boundary. Hadamard additionally has every entry
    // magnitude-tied, exercising the deterministic anchor tie-break.
    const CMatrix gates[] = {makeH(0).matrix(), makeCnot(0, 1).matrix(),
                             makeRz(0, 0.7).matrix(),
                             makeIswap(0, 1).matrix()};
    const double phases[] = {0.3, M_PI / 2, 1.7, M_PI, 2.9, -0.4};
    for (const CMatrix &u : gates) {
        std::string base = unitaryFingerprint(u);
        for (double theta : phases) {
            CMatrix v = u * std::exp(Cmplx(0, theta));
            EXPECT_EQ(base, unitaryFingerprint(v)) << "phase " << theta;
        }
    }
}

TEST(FingerprintTest, StableUnderNumericalNoise)
{
    // Re-deriving the "same" unitary through a different computation
    // path leaves ~1e-12 noise; keys must not split across a rounding
    // boundary. Perturb every component both ways.
    const CMatrix gates[] = {makeH(0).matrix(), makeCnot(0, 1).matrix(),
                             makeRx(0, 1.23456).matrix()};
    for (const CMatrix &u : gates) {
        std::string base = unitaryFingerprint(u);
        for (double delta : {1e-12, -1e-12}) {
            CMatrix v = u;
            for (std::size_t i = 0; i < v.data().size(); ++i)
                v.raw()[i] += Cmplx(delta, -delta);
            EXPECT_EQ(base, unitaryFingerprint(v)) << "delta " << delta;
        }
    }
}

TEST(FingerprintTest, NegativeZeroDoesNotSplitKeys)
{
    // The old "%.5f" formatting rendered -1e-9 as "-0.00000" and +1e-9
    // as "0.00000" — two keys for one operation.
    CMatrix u = CMatrix::identity(2);
    CMatrix v = u;
    u(0, 1) = Cmplx(1e-9, -1e-9);
    v(0, 1) = Cmplx(-1e-9, 1e-9);
    EXPECT_EQ(unitaryFingerprint(u), unitaryFingerprint(v));
}

TEST(FingerprintTest, ShapeIgnoresAnglesButNotStructure)
{
    Gate a = makeAggregate(
        {makeCnot(0, 1), makeRz(1, 5.67), makeCnot(0, 1)}, "A");
    Gate b = makeAggregate(
        {makeCnot(0, 1), makeRz(1, 2.30), makeCnot(0, 1)}, "B");
    EXPECT_EQ(structuralShape(a), structuralShape(b));
    EXPECT_NE(structuralFingerprint(a), structuralFingerprint(b));
    // Different wiring is a different shape.
    Gate c = makeAggregate(
        {makeCnot(0, 1), makeRz(0, 5.67), makeCnot(0, 1)}, "C");
    EXPECT_NE(structuralShape(a), structuralShape(c));
    // A shape key never collides with a parameterized fingerprint.
    EXPECT_NE(structuralShape(a), structuralFingerprint(a));
}

} // namespace
} // namespace qaic
