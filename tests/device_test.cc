/**
 * @file
 * Tests for the device model: topologies, channel inventory, distances
 * and Hamiltonian operators.
 */
#include <gtest/gtest.h>

#include "device/device.h"
#include "la/cmatrix.h"

namespace qaic {
namespace {

TEST(DeviceTest, LineTopology)
{
    DeviceModel dev = DeviceModel::line(4);
    EXPECT_EQ(dev.numQubits(), 4);
    EXPECT_EQ(dev.couplings().size(), 3u);
    EXPECT_TRUE(dev.adjacent(0, 1));
    EXPECT_TRUE(dev.adjacent(2, 1));
    EXPECT_FALSE(dev.adjacent(0, 2));
    EXPECT_EQ(dev.distance(0, 3), 3);
}

TEST(DeviceTest, GridTopology)
{
    DeviceModel dev = DeviceModel::grid(2, 3);
    EXPECT_EQ(dev.numQubits(), 6);
    // 2x3 grid: 3 vertical + 4 horizontal edges = 7.
    EXPECT_EQ(dev.couplings().size(), 7u);
    EXPECT_TRUE(dev.adjacent(0, 3));
    EXPECT_TRUE(dev.adjacent(1, 2));
    EXPECT_FALSE(dev.adjacent(0, 4));
    EXPECT_EQ(dev.distance(0, 5), 3);
}

TEST(DeviceTest, GridForCoversRequest)
{
    for (int n : {1, 2, 5, 17, 30, 47, 60}) {
        DeviceModel dev = DeviceModel::gridFor(n);
        EXPECT_GE(dev.numQubits(), n);
    }
}

TEST(DeviceTest, ChannelInventory)
{
    DeviceModel dev = DeviceModel::line(3);
    // 2 drives per qubit + 1 XY per edge.
    EXPECT_EQ(dev.channels().size(), 3u * 2 + 2);
    int xy = 0;
    for (const ControlChannel &ch : dev.channels()) {
        EXPECT_GT(ch.maxAmplitude, 0.0);
        if (ch.type == ControlChannel::Type::kXY)
            ++xy;
    }
    EXPECT_EQ(xy, 2);
}

TEST(DeviceTest, DefaultLimitsMatchPaper)
{
    DeviceModel dev = DeviceModel::line(2);
    EXPECT_DOUBLE_EQ(dev.mu2(), 0.02);
    EXPECT_DOUBLE_EQ(dev.mu1(), 0.1);
    EXPECT_DOUBLE_EQ(dev.mu1() / dev.mu2(), 5.0);
}

TEST(DeviceTest, ShortestPathEndpoints)
{
    DeviceModel dev = DeviceModel::grid(3, 3);
    auto path = dev.shortestPath(0, 8);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 8);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, dev.distance(0, 8));
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(dev.adjacent(path[i], path[i + 1]));
}

TEST(DeviceTest, ChannelOperatorsAreHermitianAndTraceless)
{
    DeviceModel dev = DeviceModel::line(2);
    for (std::size_t k = 0; k < dev.channels().size(); ++k) {
        CMatrix op = dev.channelOperator(k);
        EXPECT_TRUE(op.isHermitian(1e-12));
        EXPECT_NEAR(std::abs(op.trace()), 0.0, 1e-12);
    }
}

TEST(DeviceTest, XyOperatorActsInExchangeSubspace)
{
    DeviceModel dev = DeviceModel::line(2);
    // Find the XY channel.
    std::size_t xy = 0;
    for (std::size_t k = 0; k < dev.channels().size(); ++k)
        if (dev.channels()[k].type == ControlChannel::Type::kXY)
            xy = k;
    CMatrix op = dev.channelOperator(xy);
    // (XX+YY)/2 maps |01> <-> |10> and annihilates |00>, |11>.
    EXPECT_NEAR(std::abs(op(1, 2) - Cmplx(1, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(op(2, 1) - Cmplx(1, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(op(0, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(op(3, 3)), 0.0, 1e-12);
}

TEST(DeviceTest, FullyConnectedEdgeCount)
{
    DeviceModel dev = DeviceModel::fullyConnected(5);
    EXPECT_EQ(dev.couplings().size(), 10u);
    EXPECT_TRUE(dev.adjacent(0, 4));
}

TEST(DeviceTest, DuplicateCouplingsDeduplicated)
{
    DeviceModel dev(3, {{0, 1}, {1, 0}, {1, 2}});
    EXPECT_EQ(dev.couplings().size(), 2u);
}

} // namespace
} // namespace qaic
