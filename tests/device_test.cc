/**
 * @file
 * Tests for the device model: topologies, channel inventory, distances
 * and Hamiltonian operators, plus the topology factory library.
 */
#include <deque>
#include <set>

#include <gtest/gtest.h>

#include "device/device.h"
#include "device/topology.h"
#include "la/cmatrix.h"

namespace qaic {
namespace {

/** Independent BFS distance (reference for the precomputed table). */
int
bfsDistance(const DeviceModel &dev, int a, int b)
{
    std::vector<int> dist(dev.numQubits(), -1);
    std::deque<int> queue{a};
    dist[a] = 0;
    while (!queue.empty()) {
        int q = queue.front();
        queue.pop_front();
        for (int nbr : dev.neighbors(q))
            if (dist[nbr] < 0) {
                dist[nbr] = dist[q] + 1;
                queue.push_back(nbr);
            }
    }
    return dist[b];
}

TEST(DeviceTest, LineTopology)
{
    DeviceModel dev = DeviceModel::line(4);
    EXPECT_EQ(dev.numQubits(), 4);
    EXPECT_EQ(dev.couplings().size(), 3u);
    EXPECT_TRUE(dev.adjacent(0, 1));
    EXPECT_TRUE(dev.adjacent(2, 1));
    EXPECT_FALSE(dev.adjacent(0, 2));
    EXPECT_EQ(dev.distance(0, 3), 3);
}

TEST(DeviceTest, GridTopology)
{
    DeviceModel dev = DeviceModel::grid(2, 3);
    EXPECT_EQ(dev.numQubits(), 6);
    // 2x3 grid: 3 vertical + 4 horizontal edges = 7.
    EXPECT_EQ(dev.couplings().size(), 7u);
    EXPECT_TRUE(dev.adjacent(0, 3));
    EXPECT_TRUE(dev.adjacent(1, 2));
    EXPECT_FALSE(dev.adjacent(0, 4));
    EXPECT_EQ(dev.distance(0, 5), 3);
}

TEST(DeviceTest, GridForCoversRequest)
{
    for (int n : {1, 2, 5, 17, 30, 47, 60}) {
        DeviceModel dev = DeviceModel::gridFor(n);
        EXPECT_GE(dev.numQubits(), n);
    }
}

TEST(DeviceTest, ChannelInventory)
{
    DeviceModel dev = DeviceModel::line(3);
    // 2 drives per qubit + 1 XY per edge.
    EXPECT_EQ(dev.channels().size(), 3u * 2 + 2);
    int xy = 0;
    for (const ControlChannel &ch : dev.channels()) {
        EXPECT_GT(ch.maxAmplitude, 0.0);
        if (ch.type == ControlChannel::Type::kXY)
            ++xy;
    }
    EXPECT_EQ(xy, 2);
}

TEST(DeviceTest, DefaultLimitsMatchPaper)
{
    DeviceModel dev = DeviceModel::line(2);
    EXPECT_DOUBLE_EQ(dev.mu2(), 0.02);
    EXPECT_DOUBLE_EQ(dev.mu1(), 0.1);
    EXPECT_DOUBLE_EQ(dev.mu1() / dev.mu2(), 5.0);
}

TEST(DeviceTest, ShortestPathEndpoints)
{
    DeviceModel dev = DeviceModel::grid(3, 3);
    auto path = dev.shortestPath(0, 8);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 8);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, dev.distance(0, 8));
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(dev.adjacent(path[i], path[i + 1]));
}

TEST(DeviceTest, ChannelOperatorsAreHermitianAndTraceless)
{
    DeviceModel dev = DeviceModel::line(2);
    for (std::size_t k = 0; k < dev.channels().size(); ++k) {
        CMatrix op = dev.channelOperator(k);
        EXPECT_TRUE(op.isHermitian(1e-12));
        EXPECT_NEAR(std::abs(op.trace()), 0.0, 1e-12);
    }
}

TEST(DeviceTest, XyOperatorActsInExchangeSubspace)
{
    DeviceModel dev = DeviceModel::line(2);
    // Find the XY channel.
    std::size_t xy = 0;
    for (std::size_t k = 0; k < dev.channels().size(); ++k)
        if (dev.channels()[k].type == ControlChannel::Type::kXY)
            xy = k;
    CMatrix op = dev.channelOperator(xy);
    // (XX+YY)/2 maps |01> <-> |10> and annihilates |00>, |11>.
    EXPECT_NEAR(std::abs(op(1, 2) - Cmplx(1, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(op(2, 1) - Cmplx(1, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(op(0, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(op(3, 3)), 0.0, 1e-12);
}

TEST(DeviceTest, FullyConnectedEdgeCount)
{
    DeviceModel dev = DeviceModel::fullyConnected(5);
    EXPECT_EQ(dev.couplings().size(), 10u);
    EXPECT_TRUE(dev.adjacent(0, 4));
}

TEST(DeviceTest, DuplicateCouplingsDeduplicated)
{
    DeviceModel dev(3, {{0, 1}, {1, 0}, {1, 2}});
    EXPECT_EQ(dev.couplings().size(), 2u);
}

TEST(DeviceTest, DistanceTableMatchesBfs)
{
    for (const DeviceModel &dev :
         {DeviceModel::grid(3, 4), ringDevice(7), heavyHexDeviceFor(15),
          randomRegularDevice(10, 3, 5)}) {
        for (int a = 0; a < dev.numQubits(); ++a)
            for (int b = 0; b < dev.numQubits(); ++b)
                EXPECT_EQ(dev.distance(a, b), bfsDistance(dev, a, b))
                    << a << "->" << b;
    }
}

TEST(DeviceTest, DiameterAndConnectivity)
{
    EXPECT_EQ(DeviceModel::line(5).diameter(), 4);
    EXPECT_EQ(ringDevice(8).diameter(), 4);
    EXPECT_EQ(DeviceModel::grid(3, 3).diameter(), 4);
    EXPECT_EQ(DeviceModel::fullyConnected(6).diameter(), 1);
    EXPECT_TRUE(heavyHexDeviceFor(20).connected());

    // Two disconnected line segments: cross-component distance is -1.
    DeviceModel split(4, {{0, 1}, {2, 3}});
    EXPECT_FALSE(split.connected());
    EXPECT_EQ(split.distance(0, 3), -1);
    EXPECT_EQ(split.distance(1, 0), 1);
}

TEST(TopologyTest, RingStructure)
{
    DeviceModel ring = ringDevice(6);
    EXPECT_EQ(ring.numQubits(), 6);
    EXPECT_EQ(ring.couplings().size(), 6u);
    EXPECT_TRUE(ring.adjacent(5, 0));
    EXPECT_EQ(ring.distance(0, 3), 3);
    EXPECT_EQ(ring.distance(0, 4), 2); // Around the back.
    for (int q = 0; q < 6; ++q)
        EXPECT_EQ(ring.neighbors(q).size(), 2u);
}

TEST(TopologyTest, HeavyHexStructure)
{
    // 3 chains of 5; bridges at columns {0,4} then {2}: 15 + 3 = 18.
    DeviceModel hex = heavyHexDevice(3, 5);
    EXPECT_EQ(hex.numQubits(), 18);
    EXPECT_TRUE(hex.connected());
    // Chain qubits have degree <= 3 (two chain neighbours + at most one
    // bridge — the alternating offsets can never stack two bridges on
    // one column); bridge qubits have degree exactly 2.
    for (int q = 0; q < 15; ++q)
        EXPECT_LE(hex.neighbors(q).size(), 3u);
    for (int q = 15; q < 18; ++q)
        EXPECT_EQ(hex.neighbors(q).size(), 2u);
    // Bridge at row 0, column 0 joins qubits 0 and 5.
    EXPECT_TRUE(hex.adjacent(0, 15));
    EXPECT_TRUE(hex.adjacent(5, 15));
}

TEST(TopologyTest, HeavyHexForCoversRequest)
{
    for (int n : {1, 4, 9, 17, 30, 47, 64}) {
        DeviceModel dev = heavyHexDeviceFor(n);
        EXPECT_GE(dev.numQubits(), n);
        EXPECT_TRUE(dev.connected());
    }
}

TEST(TopologyTest, RandomRegularIsRegularConnectedAndSeeded)
{
    DeviceModel dev = randomRegularDevice(12, 3, 42);
    EXPECT_EQ(dev.numQubits(), 12);
    EXPECT_EQ(dev.couplings().size(), 12u * 3 / 2);
    EXPECT_TRUE(dev.connected());
    for (int q = 0; q < 12; ++q)
        EXPECT_EQ(dev.neighbors(q).size(), 3u);

    // Same seed reproduces the graph; a different seed changes it.
    DeviceModel again = randomRegularDevice(12, 3, 42);
    EXPECT_EQ(dev.couplings(), again.couplings());
    DeviceModel other = randomRegularDevice(12, 3, 43);
    EXPECT_NE(dev.couplings(), other.couplings());
}

TEST(TopologyTest, FactoriesGenerateMatchingChannels)
{
    // Every coupling must come with exactly one XY channel, every qubit
    // with an X and a Y drive — on every factory output.
    for (Topology t : kAllTopologies) {
        DeviceModel dev = deviceForTopology(t, 9, /*seed=*/3);
        EXPECT_GE(dev.numQubits(), 9) << topologyName(t);
        std::set<std::pair<int, int>> xy;
        int drives = 0;
        for (const ControlChannel &ch : dev.channels()) {
            if (ch.type == ControlChannel::Type::kXY) {
                EXPECT_DOUBLE_EQ(ch.maxAmplitude, dev.mu2());
                xy.insert({ch.q0, ch.q1});
            } else {
                EXPECT_DOUBLE_EQ(ch.maxAmplitude, dev.mu1());
                ++drives;
            }
        }
        EXPECT_EQ(drives, 2 * dev.numQubits()) << topologyName(t);
        std::set<std::pair<int, int>> couplers(dev.couplings().begin(),
                                               dev.couplings().end());
        EXPECT_EQ(xy, couplers) << topologyName(t);
    }
}

TEST(TopologyTest, NameRoundTrip)
{
    for (Topology t : kAllTopologies) {
        Topology parsed;
        ASSERT_TRUE(topologyFromName(topologyName(t), &parsed));
        EXPECT_EQ(parsed, t);
    }
    Topology ignored;
    EXPECT_FALSE(topologyFromName("torus", &ignored));
}

} // namespace
} // namespace qaic
