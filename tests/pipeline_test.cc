/**
 * @file
 * Tests for the pass-pipeline API (compiler/pipeline.h) and the batch
 * front door (compiler/batch.h): canonical pass ordering per strategy,
 * per-pass metrics, exact equivalence between the Pipeline path and the
 * legacy Compiler facade, batch-vs-sequential determinism, concurrent
 * CachingOracle access, and option-resolution precedence.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "compiler/batch.h"
#include "compiler/compiler.h"
#include "compiler/pipeline.h"
#include "control/grape.h"
#include "ir/gate.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"
#include "workloads/suite.h"
#include "workloads/uccsd.h"

namespace qaic {
namespace {

TEST(StrategyNameTest, RoundTripsAllStrategies)
{
    for (Strategy s : kAllStrategies) {
        Strategy parsed;
        ASSERT_TRUE(strategyFromName(strategyName(s), &parsed))
            << strategyName(s);
        EXPECT_EQ(parsed, s);
    }
}

TEST(StrategyNameTest, AcceptsCliShortForms)
{
    const std::pair<const char *, Strategy> cases[] = {
        {"isa", Strategy::kIsa},
        {"cls", Strategy::kCls},
        {"handopt", Strategy::kHandOpt},
        {"cls-handopt", Strategy::kClsHandOpt},
        {"agg", Strategy::kAggregation},
        {"cls-agg", Strategy::kClsAggregation},
    };
    for (const auto &[name, expected] : cases) {
        Strategy parsed;
        ASSERT_TRUE(strategyFromName(name, &parsed)) << name;
        EXPECT_EQ(parsed, expected) << name;
    }
    Strategy unused;
    EXPECT_FALSE(strategyFromName("nope", &unused));
    EXPECT_FALSE(strategyFromName("", &unused));
}

TEST(OptionResolutionTest, DevicePrecedenceAndWidthSync)
{
    DeviceModel device = DeviceModel::line(3, /*mu1=*/0.2, /*mu2=*/0.05);
    CompilerOptions user;
    user.model.mu1 = 99.0; // Must lose to the device's limits.
    user.model.mu2 = 99.0;
    user.maxInstructionWidth = 4;
    user.aggregation.maxWidth = 123; // Must lose to maxInstructionWidth.
    user.seed = 7;

    CompilerOptions resolved = resolveCompilerOptions(device, user);
    EXPECT_DOUBLE_EQ(resolved.model.mu1, 0.2);
    EXPECT_DOUBLE_EQ(resolved.model.mu2, 0.05);
    EXPECT_EQ(resolved.aggregation.maxWidth, 4);
    EXPECT_EQ(resolved.seed, 7u);

    // The caller's options are never mutated (the old Compiler
    // constructor silently rewrote them).
    EXPECT_DOUBLE_EQ(user.model.mu1, 99.0);
    EXPECT_EQ(user.aggregation.maxWidth, 123);
}

TEST(OptionResolutionTest, FacadeExposesResolvedOptions)
{
    DeviceModel device = DeviceModel::line(3, 0.2, 0.05);
    Compiler compiler(device, {});
    EXPECT_DOUBLE_EQ(compiler.options().model.mu1, 0.2);
    EXPECT_DOUBLE_EQ(compiler.options().model.mu2, 0.05);
    EXPECT_EQ(compiler.options().aggregation.maxWidth,
              compiler.options().maxInstructionWidth);
}

TEST(PipelineTest, CanonicalPassOrderingPerStrategy)
{
    using Names = std::vector<std::string>;
    const std::pair<Strategy, Names> expected[] = {
        {Strategy::kIsa,
         {"frontend-lowering", "mapping", "gate-backend",
          "schedule-asap"}},
        {Strategy::kCls,
         {"frontend-lowering", "cls-frontend", "mapping", "gate-backend",
          "schedule-asap"}},
        {Strategy::kHandOpt,
         {"frontend-lowering", "mapping", "gate-backend-handopt",
          "schedule-asap"}},
        {Strategy::kClsHandOpt,
         {"frontend-lowering", "cls-frontend", "mapping",
          "gate-backend-handopt", "schedule-asap"}},
        {Strategy::kAggregation,
         {"frontend-lowering", "mapping", "aggregation-backend",
          "schedule-asap"}},
        {Strategy::kClsAggregation,
         {"frontend-lowering", "cls-frontend", "mapping",
          "aggregation-backend", "schedule-cls"}},
    };
    for (const auto &[strategy, names] : expected)
        EXPECT_EQ(Pipeline::forStrategy(strategy).passNames(), names)
            << strategyName(strategy);
}

TEST(PipelineTest, PerPassMetricsPopulated)
{
    Circuit circuit = qaoaMaxcut(lineGraph(6));
    DeviceModel device = DeviceModel::gridFor(6);
    Pipeline pipeline = Pipeline::forStrategy(Strategy::kClsAggregation);
    CompilationContext context(device, {});
    CompilationResult r = pipeline.compile(circuit, context).value();

    // forStrategy pre-labels the pipeline; no separate strategy
    // argument to get wrong.
    EXPECT_EQ(r.strategy, Strategy::kClsAggregation);
    ASSERT_EQ(r.passMetrics.size(), pipeline.size());
    EXPECT_EQ(r.passMetrics.size(), pipeline.passNames().size());
    for (std::size_t i = 0; i < r.passMetrics.size(); ++i) {
        EXPECT_EQ(r.passMetrics[i].pass, pipeline.passNames()[i]);
        EXPECT_GE(r.passMetrics[i].wallMs, 0.0);
        EXPECT_GT(r.passMetrics[i].instructionsAfter, 0);
    }
}

TEST(PipelineTest, ContextIsReusableAcrossCompiles)
{
    Circuit circuit = qaoaMaxcut(lineGraph(5));
    DeviceModel device = DeviceModel::gridFor(5);
    CompilationContext context(device, {});
    Pipeline pipeline = Pipeline::forStrategy(Strategy::kClsAggregation);
    CompilationResult first =
        pipeline.compile(circuit, context).value();
    CompilationResult second =
        pipeline.compile(circuit, context).value();
    EXPECT_EQ(first.latencyNs, second.latencyNs);
    EXPECT_EQ(first.instructionCount, second.instructionCount);
    EXPECT_EQ(first.passMetrics.size(), second.passMetrics.size());
    // The second run amortizes the first one's latency cache.
    EXPECT_GT(context.oracle().hits(), 0u);
}

TEST(PipelineTest, CustomPipelineCompilesValid)
{
    // A configuration no Strategy value names: aggregation without the
    // CLS frontend, CLS-scheduled at the physical level.
    Circuit circuit = qaoaMaxcut(lineGraph(5));
    DeviceModel device = DeviceModel::gridFor(5);
    Pipeline custom;
    custom.emplace<FrontendLoweringPass>();
    custom.emplace<MappingPass>();
    custom.emplace<AggregationBackendPass>();
    custom.emplace<ClsSchedulePass>();

    custom.label(Strategy::kAggregation);

    CompilationContext context(device, {});
    CompilationResult r = custom.compile(circuit, context).value();
    EXPECT_EQ(r.strategy, Strategy::kAggregation);
    EXPECT_GT(r.latencyNs, 0.0);
    std::string error;
    EXPECT_TRUE(r.schedule.validate(device.numQubits(), &error)) << error;
}

TEST(PipelineDeathTest, MiscomposedPipelinePanics)
{
    Circuit circuit = qaoaMaxcut(lineGraph(4));
    DeviceModel device = DeviceModel::gridFor(4);

    // The run-time stage guards inside the passes, not the contract
    // layer: disable invariant checking so the legacy panics fire in
    // Debug and Release alike (the contract layer would reject the
    // no_mapping pipeline first with its own message, tested below).
    CompilerOptions unchecked;
    unchecked.checkInvariants = false;

    // Schedule with no backend: must panic, not return latency 0.
    Pipeline no_backend;
    no_backend.emplace<FrontendLoweringPass>();
    no_backend.emplace<MappingPass>();
    no_backend.emplace<AsapSchedulePass>();
    CompilationContext c1(device, unchecked);
    EXPECT_DEATH(no_backend.compile(circuit, c1),
                 "scheduling requires a backend");

    // Backend with no mapping: must panic, not process an unrouted
    // circuit.
    Pipeline no_mapping;
    no_mapping.emplace<FrontendLoweringPass>();
    no_mapping.emplace<AggregationBackendPass>();
    CompilationContext c2(device, unchecked);
    EXPECT_DEATH(no_mapping.compile(circuit, c2),
                 "requires a mapped circuit");

    // Backend but no schedule pass: must panic, not report latency 0.
    Pipeline no_schedule;
    no_schedule.emplace<FrontendLoweringPass>();
    no_schedule.emplace<MappingPass>();
    no_schedule.emplace<AggregationBackendPass>();
    CompilationContext c3(device, unchecked);
    EXPECT_DEATH(no_schedule.compile(circuit, c3),
                 "no schedule");
}

TEST(PipelineDeathTest, ContractViolationNamesPassAndInvariant)
{
    Circuit circuit = qaoaMaxcut(lineGraph(4));
    DeviceModel device = DeviceModel::gridFor(4);
    CompilerOptions checked;
    checked.checkInvariants = true;

    // A backend without mapping: the contract layer rejects it before
    // the pass runs, naming the pass and the missing invariant.
    Pipeline no_mapping;
    no_mapping.emplace<FrontendLoweringPass>();
    no_mapping.emplace<AggregationBackendPass>();
    CompilationContext c1(device, checked);
    EXPECT_DEATH(no_mapping.compile(circuit, c1),
                 "pipeline contract violation: pass 'aggregation-backend' "
                 "requires.*coupling-legal");

    // Scheduling straight after lowering: coupling legality was never
    // established either.
    Pipeline no_backend;
    no_backend.emplace<FrontendLoweringPass>();
    no_backend.emplace<AsapSchedulePass>();
    CompilationContext c2(device, checked);
    EXPECT_DEATH(no_backend.compile(circuit, c2),
                 "pipeline contract violation: pass 'schedule-asap' "
                 "requires coupling-legal");
}

/** The acceptance-criteria equivalence: every strategy, Pipeline path
 *  vs legacy Compiler facade, identical result metrics. */
TEST(PipelineTest, MatchesLegacyFacadeOnAllStrategies)
{
    const Circuit circuits[] = {qaoaMaxcut(lineGraph(6)), uccsdAnsatz(4)};
    for (const Circuit &circuit : circuits) {
        DeviceModel device = DeviceModel::gridFor(circuit.numQubits());
        for (Strategy s : kAllStrategies) {
            Compiler legacy(device);
            CompilationResult a = legacy.compile(circuit, s);

            CompilationContext context(device, {});
            CompilationResult b =
                Pipeline::forStrategy(s).compile(circuit, context).value();

            EXPECT_EQ(b.strategy, s) << strategyName(s);
            EXPECT_EQ(a.latencyNs, b.latencyNs) << strategyName(s);
            EXPECT_EQ(a.swapCount, b.swapCount) << strategyName(s);
            EXPECT_EQ(a.instructionCount, b.instructionCount)
                << strategyName(s);
            EXPECT_EQ(a.aggregateCount, b.aggregateCount)
                << strategyName(s);
            EXPECT_EQ(a.maxWidth, b.maxWidth) << strategyName(s);
            EXPECT_EQ(a.diagonalBlocks, b.diagonalBlocks)
                << strategyName(s);
        }
    }
}

TEST(BatchTest, MatchesSequentialOnWorkloadSuite)
{
    // Down-scaled suite workloads across every strategy, compiled on 4
    // threads with a shared cache — results must be bitwise identical
    // to the sequential facade for the same (default) seed.
    std::vector<BatchJob> jobs;
    for (const char *name : {"MAXCUT-line", "Ising-n30", "UCCSD-n4"}) {
        Circuit circuit = benchmarkByName(name, 0.3).circuit;
        DeviceModel device = DeviceModel::gridFor(circuit.numQubits());
        for (Strategy s : kAllStrategies)
            jobs.push_back({circuit, device, s});
    }

    std::vector<CompilationResult> batch = unwrapBatch(
        compileBatch(std::span<const BatchJob>(jobs), CompilerOptions{},
                     /*threads=*/4));
    ASSERT_EQ(batch.size(), jobs.size());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        Compiler sequential(jobs[i].device);
        CompilationResult expected =
            sequential.compile(jobs[i].circuit, jobs[i].strategy);
        EXPECT_EQ(batch[i].latencyNs, expected.latencyNs) << i;
        EXPECT_EQ(batch[i].swapCount, expected.swapCount) << i;
        EXPECT_EQ(batch[i].instructionCount, expected.instructionCount)
            << i;
        EXPECT_EQ(batch[i].aggregateCount, expected.aggregateCount) << i;
        std::string error;
        EXPECT_TRUE(batch[i].schedule.validate(
            jobs[i].device.numQubits(), &error))
            << i << ": " << error;
    }
}

TEST(BatchTest, HomogeneousOverloadAndThreadCounts)
{
    DeviceModel device = DeviceModel::gridFor(6);
    std::vector<Circuit> circuits;
    for (int n = 0; n < 4; ++n)
        circuits.push_back(qaoaMaxcut(lineGraph(6)));

    std::vector<CompilationResult> one = unwrapBatch(
        compileBatch(device, circuits, Strategy::kClsAggregation, {},
                     /*threads=*/1));
    std::vector<CompilationResult> four = unwrapBatch(
        compileBatch(device, circuits, Strategy::kClsAggregation, {},
                     /*threads=*/4));
    ASSERT_EQ(one.size(), circuits.size());
    ASSERT_EQ(four.size(), circuits.size());
    for (std::size_t i = 0; i < circuits.size(); ++i) {
        EXPECT_EQ(one[i].latencyNs, four[i].latencyNs) << i;
        EXPECT_EQ(one[i].instructionCount, four[i].instructionCount) << i;
    }
}

TEST(BatchTest, SharesOracleAcrossJobs)
{
    DeviceModel device = DeviceModel::gridFor(6);
    std::vector<Circuit> circuits(4, qaoaMaxcut(lineGraph(6)));
    auto oracle =
        makeCachingOracle(resolveCompilerOptions(device, {}));
    compileBatch(device, circuits, Strategy::kClsAggregation, {},
                 /*threads=*/4, oracle);
    // Identical circuits: later jobs must hit the cache the earlier
    // ones (or the CLS logical cost model) filled.
    EXPECT_GT(oracle->hits(), 0u);
    EXPECT_GT(oracle->entries(), 0u);
}

TEST(BatchTest, EmptyBatchIsFine)
{
    DeviceModel device = DeviceModel::gridFor(4);
    std::vector<Circuit> none;
    EXPECT_TRUE(compileBatch(device, none, Strategy::kIsa).empty());
}

TEST(CachingOracleTest, ConcurrentAccessIsConsistent)
{
    // Thread-sanitizer-friendly: 8 threads hammer one shared cache with
    // the same gate set, no sleeps; every returned value must equal the
    // single-threaded reference and the counters must account for every
    // call.
    auto reference = std::make_shared<AnalyticOracle>();
    std::vector<Gate> gates = {makeH(0),          makeT(1),
                               makeRx(0, 0.7),    makeRz(1, 1.3),
                               makeCnot(0, 1),    makeCz(0, 1),
                               makeRzz(0, 1, 0.9), makeSwap(0, 1)};
    std::vector<double> expected;
    for (const Gate &g : gates)
        expected.push_back(reference->latencyNs(g));

    CachingOracle shared(std::make_shared<AnalyticOracle>());
    constexpr int kThreads = 8;
    constexpr int kRounds = 50;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&] {
            for (int round = 0; round < kRounds; ++round)
                for (std::size_t i = 0; i < gates.size(); ++i)
                    if (shared.latencyNs(gates[i]) != expected[i])
                        mismatches.fetch_add(1);
        });
    for (std::thread &t : pool)
        t.join();

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(shared.hits() + shared.misses(),
              static_cast<std::size_t>(kThreads) * kRounds *
                  gates.size());
    // Every distinct key was computed at least once, and the cache
    // absorbed virtually everything else.
    EXPECT_GE(shared.misses(), shared.entries());
    EXPECT_GT(shared.hits(), shared.misses());

    // The stats() snapshot must agree with the individual accessors and
    // account for every in-flight pricing having drained.
    CachingOracle::Stats stats = shared.stats();
    EXPECT_EQ(stats.hits, shared.hits());
    EXPECT_EQ(stats.misses, shared.misses());
    EXPECT_EQ(stats.entries, shared.entries());
    EXPECT_EQ(stats.inflight, 0u);
    EXPECT_EQ(shared.inflight(), 0u);
    EXPECT_GE(stats.peakInflight, 1u);
    EXPECT_LE(stats.peakInflight, static_cast<std::size_t>(kThreads));
    EXPECT_NEAR(stats.hitRate(),
                static_cast<double>(stats.hits) /
                    static_cast<double>(stats.hits + stats.misses),
                1e-12);
}

TEST(CachingOracleTest, StatsSnapshotIsNeverTorn)
{
    // Regression: stats() used to be assembled from getters that each
    // took the lock separately, so a sampler racing the worker pool
    // could observe counters from different moments (e.g. more entries
    // than misses). Hammer the cache from a pool while a sampler takes
    // snapshots and check the cross-counter invariants on every one.
    CachingOracle shared(std::make_shared<AnalyticOracle>());
    std::vector<Gate> gates;
    for (int i = 0; i < 64; ++i)
        gates.push_back(makeRx(0, 0.01 + 0.07 * i));

    std::atomic<bool> done{false};
    std::atomic<int> violations{0};
    std::thread sampler([&] {
        while (!done.load()) {
            CachingOracle::Stats s = shared.stats();
            if (s.entries > s.misses)
                violations.fetch_add(1);
            if (s.inflight > s.peakInflight)
                violations.fetch_add(1);
            if (s.hits + s.misses < s.entries)
                violations.fetch_add(1);
            if (s.libraryHits > s.misses)
                violations.fetch_add(1);
        }
    });

    constexpr int kThreads = 8;
    constexpr int kRounds = 40;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&] {
            for (int round = 0; round < kRounds; ++round)
                for (const Gate &g : gates)
                    shared.latencyNs(g);
        });
    for (std::thread &t : pool)
        t.join();
    done.store(true);
    sampler.join();

    EXPECT_EQ(violations.load(), 0);
    CachingOracle::Stats s = shared.stats();
    EXPECT_EQ(s.hits + s.misses,
              static_cast<std::size_t>(kThreads) * kRounds * gates.size());
    EXPECT_EQ(s.entries, gates.size());
    EXPECT_EQ(s.inflight, 0u);
}

/** Pulses from two GRAPE results must agree exactly. */
void
expectIdenticalPulses(const GrapeResult &a, const GrapeResult &b)
{
    ASSERT_EQ(a.pulses.amplitudes.size(), b.pulses.amplitudes.size());
    for (std::size_t k = 0; k < a.pulses.amplitudes.size(); ++k) {
        ASSERT_EQ(a.pulses.amplitudes[k].size(),
                  b.pulses.amplitudes[k].size());
        for (std::size_t j = 0; j < a.pulses.amplitudes[k].size(); ++j)
            EXPECT_DOUBLE_EQ(a.pulses.amplitudes[k][j],
                             b.pulses.amplitudes[k][j])
                << "channel " << k << " step " << j;
    }
}

TEST(GrapeParallelTest, RestartFanOutMatchesSequentialUnderFixedSeed)
{
    // Non-converging budget: every restart runs to the iteration cap on
    // both paths, so the parallel fan-out must match the sequential
    // scan bit for bit (restart seeds are pre-drawn).
    DeviceModel pair = DeviceModel::line(2);
    GrapeOptimizer grape(pair);
    GrapeOptions options;
    options.maxIterations = 25;
    options.restarts = 3;
    options.seed = 1234;
    CMatrix target = makeCnot(0, 1).matrix();

    GrapeOptions sequential = options;
    sequential.threads = 1;
    GrapeResult expected = grape.optimize(target, 12.0, sequential);

    for (int threads : {2, 3, 8}) {
        GrapeOptions parallel = options;
        parallel.threads = threads;
        GrapeResult got = grape.optimize(target, 12.0, parallel);
        EXPECT_DOUBLE_EQ(got.fidelity, expected.fidelity)
            << threads << " threads";
        EXPECT_EQ(got.iterations, expected.iterations);
        EXPECT_EQ(got.converged, expected.converged);
        ASSERT_EQ(got.trace.size(), expected.trace.size());
        for (std::size_t i = 0; i < got.trace.size(); ++i)
            EXPECT_DOUBLE_EQ(got.trace[i], expected.trace[i]);
        expectIdenticalPulses(got, expected);
    }
}

TEST(GrapeParallelTest, ConvergedRunSelectsSameWinnerAcrossThreadCounts)
{
    // Converging case: the sequential path early-exits at the first
    // converged restart; the parallel path runs every restart but its
    // selection scan must reproduce the same winner.
    DeviceModel pair = DeviceModel::line(2);
    GrapeOptimizer grape(pair);
    GrapeOptions options;
    options.maxIterations = 200;
    options.restarts = 2;

    GrapeOptions sequential = options;
    sequential.threads = 1;
    GrapeResult expected =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, sequential);
    ASSERT_TRUE(expected.converged);

    GrapeOptions parallel = options;
    parallel.threads = 4;
    GrapeResult got =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, parallel);
    EXPECT_TRUE(got.converged);
    EXPECT_DOUBLE_EQ(got.fidelity, expected.fidelity);
    EXPECT_EQ(got.iterations, expected.iterations);
    expectIdenticalPulses(got, expected);
}

TEST(GrapeParallelTest, SingleRestartTimestepFanOutIsDeterministic)
{
    // With one restart the pool fans out per-timestep eigs and gradient
    // contractions instead; workers write disjoint slots, so any thread
    // count must reproduce the sequential trajectory exactly.
    DeviceModel pair = DeviceModel::line(2);
    GrapeOptimizer grape(pair);
    GrapeOptions options;
    options.maxIterations = 40;
    options.restarts = 1;

    GrapeOptions sequential = options;
    sequential.threads = 1;
    GrapeResult expected =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, sequential);

    GrapeOptions parallel = options;
    parallel.threads = 4;
    GrapeResult got =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, parallel);
    EXPECT_DOUBLE_EQ(got.fidelity, expected.fidelity);
    ASSERT_EQ(got.trace.size(), expected.trace.size());
    for (std::size_t i = 0; i < got.trace.size(); ++i)
        EXPECT_DOUBLE_EQ(got.trace[i], expected.trace[i]);
    expectIdenticalPulses(got, expected);
}

} // namespace
} // namespace qaic
