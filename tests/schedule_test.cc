/**
 * @file
 * Tests for the schedulers: ASAP baseline, maximal matching, and the
 * commutativity-aware list scheduler (Algorithm 1).
 */
#include <gtest/gtest.h>

#include "gdg/gdg.h"
#include "ir/circuit.h"
#include "oracle/oracle.h"
#include "schedule/schedule.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"

namespace qaic {
namespace {

/** Oracle with unit latency for every instruction (for depth testing). */
class UnitOracle : public LatencyOracle
{
  public:
    double latencyNs(const Gate &) override { return 1.0; }
    std::string name() const override { return "unit"; }
};

TEST(MatchingTest, PicksNonConflictingEdges)
{
    // Path graph edges 0-1, 1-2, 2-3: a maximal matching has 2 edges.
    std::vector<CandidateOp> ops = {
        {0, {0, 1}, 1.0}, {1, {1, 2}, 1.0}, {2, {2, 3}, 1.0}};
    auto chosen = findMaximalMatching(ops);
    EXPECT_EQ(chosen.size(), 2u);
}

TEST(MatchingTest, PriorityBreaksTies)
{
    // Triangle: only one edge fits; the highest priority must win.
    std::vector<CandidateOp> ops = {
        {0, {0, 1}, 1.0}, {1, {1, 2}, 9.0}, {2, {0, 2}, 2.0}};
    auto chosen = findMaximalMatching(ops);
    ASSERT_EQ(chosen.size(), 1u);
    EXPECT_EQ(ops[chosen[0]].id, 1);
}

TEST(MatchingTest, AugmentationBeatsGreedyTrap)
{
    // Greedy takes the high-priority middle edge 1-2, blocking both 0-1
    // and 2-3; the augmenting pass must recover the 2-edge matching.
    std::vector<CandidateOp> ops = {
        {0, {1, 2}, 9.0}, {1, {0, 1}, 1.0}, {2, {2, 3}, 1.0}};
    auto chosen = findMaximalMatching(ops);
    EXPECT_EQ(chosen.size(), 2u);
}

TEST(MatchingTest, SelfLoopsCountAsVertexUse)
{
    std::vector<CandidateOp> ops = {
        {0, {0}, 5.0}, {1, {0, 1}, 1.0}, {2, {1}, 0.5}};
    auto chosen = findMaximalMatching(ops);
    // 1q on 0 and 1q on 1 fit together (2 ops); the 2q op conflicts with
    // both.
    EXPECT_EQ(chosen.size(), 2u);
    for (int pick : chosen)
        EXPECT_EQ(ops[pick].qubits.size(), 1u);
}

TEST(AsapTest, RespectsDependencies)
{
    Circuit c(2);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    c.add(makeH(1));
    UnitOracle unit;
    Schedule s = scheduleAsap(c, unit);
    EXPECT_TRUE(s.validate(2));
    EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
    EXPECT_DOUBLE_EQ(s.ops[0].start, 0.0);
    EXPECT_DOUBLE_EQ(s.ops[1].start, 1.0);
    EXPECT_DOUBLE_EQ(s.ops[2].start, 2.0);
}

TEST(AsapTest, ParallelGatesOverlap)
{
    Circuit c(4);
    c.add(makeCnot(0, 1));
    c.add(makeCnot(2, 3));
    UnitOracle unit;
    Schedule s = scheduleAsap(c, unit);
    EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(ScheduleTest, ValidateCatchesOverlap)
{
    Schedule s;
    s.ops.push_back({makeH(0), 0.0, 2.0});
    s.ops.push_back({makeRx(0, 1.0), 1.0, 2.0});
    std::string error;
    EXPECT_FALSE(s.validate(1, &error));
    EXPECT_NE(error.find("overlap"), std::string::npos);
}

TEST(ScheduleTest, ToCircuitOrdersByStart)
{
    Schedule s;
    s.ops.push_back({makeH(0), 5.0, 1.0});
    s.ops.push_back({makeX(0), 0.0, 1.0});
    Circuit c = s.toCircuit(1);
    EXPECT_EQ(c.gates()[0].kind, GateKind::kX);
    EXPECT_EQ(c.gates()[1].kind, GateKind::kH);
}

TEST(ClsTest, MatchesAsapWithoutCommutativity)
{
    // A serial chain offers no reordering freedom: CLS == ASAP.
    Circuit c(3);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    c.add(makeCnot(1, 2));
    c.add(makeH(2));
    UnitOracle unit;
    CommutationChecker checker;
    Schedule cls = scheduleCls(c, &checker, unit);
    Schedule asap = scheduleAsap(c, unit);
    EXPECT_TRUE(cls.validate(3));
    EXPECT_DOUBLE_EQ(cls.makespan(), asap.makespan());
}

TEST(ClsTest, ExploitsCommutingBlocks)
{
    // Diagonal ZZ blocks emitted in a pessimal serial order: 0-1, 1-2,
    // 2-3. ASAP (program order) needs 3 rounds; CLS can run (0-1, 2-3)
    // together.
    Circuit c(4);
    c.add(makeRzz(0, 1, 0.5));
    c.add(makeRzz(1, 2, 0.5));
    c.add(makeRzz(2, 3, 0.5));
    UnitOracle unit;
    CommutationChecker checker;
    EXPECT_DOUBLE_EQ(scheduleAsap(c, unit).makespan(), 3.0);
    Schedule cls = scheduleCls(c, &checker, unit);
    EXPECT_TRUE(cls.validate(4));
    EXPECT_DOUBLE_EQ(cls.makespan(), 2.0);
}

TEST(ClsTest, RingOfBlocksReachesEdgeColoringBound)
{
    // QAOA on a 6-cycle: commuting ZZ blocks; a 2-colouring exists, so
    // CLS should finish the cost layer in 2 rounds instead of up to 6.
    Circuit c(6);
    for (int i = 0; i < 6; ++i)
        c.add(makeRzz(i, (i + 1) % 6, 0.5));
    UnitOracle unit;
    CommutationChecker checker;
    Schedule cls = scheduleCls(c, &checker, unit);
    EXPECT_TRUE(cls.validate(6));
    EXPECT_DOUBLE_EQ(cls.makespan(), 2.0);
}

TEST(ClsTest, PreservesUnitarySemantics)
{
    // The CLS-ordered circuit must stay equivalent to the original.
    Circuit c = qaoaMaxcut(lineGraph(4));
    UnitOracle unit;
    CommutationChecker checker;
    Schedule cls = scheduleCls(c, &checker, unit);
    EXPECT_TRUE(cls.validate(4));
    Circuit reordered = cls.toCircuit(4);
    EXPECT_NEAR(phaseDistance(c.unitary(), reordered.unitary()), 0.0,
                1e-6);
}

TEST(ClsTest, HeterogeneousDurations)
{
    AnalyticOracle oracle;
    Circuit c(3);
    c.add(makeCnot(0, 1));
    c.add(makeH(2));
    c.add(makeCnot(1, 2));
    CommutationChecker checker;
    Schedule s = scheduleCls(c, &checker, oracle);
    EXPECT_TRUE(s.validate(3));
    // H on q2 runs during CNOT(0,1); CNOT(1,2) follows the later of both.
    double h_len = oracle.latencyNs(makeH(2));
    double cnot_len = oracle.latencyNs(makeCnot(0, 1));
    EXPECT_DOUBLE_EQ(s.makespan(), std::max(h_len, cnot_len) + cnot_len);
}

TEST(ClsTest, ZeroDurationInstructions)
{
    // Identity (zero-latency) ops must not deadlock the event loop.
    UnitOracle unit;
    AnalyticOracle oracle;
    Circuit c(2);
    c.add(makeId(0));
    c.add(makeId(0));
    c.add(makeCnot(0, 1));
    CommutationChecker checker;
    Schedule s = scheduleCls(c, &checker, oracle);
    EXPECT_TRUE(s.validate(2));
    EXPECT_GT(s.makespan(), 0.0);
}

TEST(ClsTest, LargeParallelLayerSchedulesFlat)
{
    // 20 disjoint CNOTs must all start at t = 0.
    Circuit c(40);
    for (int i = 0; i < 20; ++i)
        c.add(makeCnot(2 * i, 2 * i + 1));
    UnitOracle unit;
    CommutationChecker checker;
    Schedule s = scheduleCls(c, &checker, unit);
    EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

} // namespace
} // namespace qaic
