/**
 * @file
 * Cross-module property tests on randomized circuits: every compiler
 * transformation must preserve circuit semantics, schedulers must respect
 * resource exclusivity and never regress each other's guarantees, and
 * the latency model must obey its structural invariants.
 */
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "aggregate/aggregate.h"
#include "compiler/compiler.h"
#include "compiler/decompose.h"
#include "compiler/handopt.h"
#include "device/topology.h"
#include "gdg/gdg.h"
#include "ir/embed.h"
#include "mapping/mapping.h"
#include "oracle/oracle.h"
#include "schedule/schedule.h"
#include "testing/generators.h"
#include "verify/verify.h"

namespace qaic {
namespace {

using testing::randomCircuit;

class RandomCircuitSweep : public ::testing::TestWithParam<int>
{
  protected:
    Circuit
    circuit() const
    {
        // 4..6 qubits, 20..44 gates, all seed-derived.
        int seed = GetParam();
        return randomCircuit(4 + seed % 3, 20 + (seed * 7) % 25,
                             1000 + seed);
    }
};

TEST_P(RandomCircuitSweep, DiagonalDetectionPreservesSemantics)
{
    Circuit c = circuit();
    Circuit detected = detectDiagonalBlocks(c, 10, nullptr);
    EXPECT_TRUE(circuitsEquivalent(c, detected, 1e-6, 6));
}

TEST_P(RandomCircuitSweep, HandOptimizationPreservesSemantics)
{
    Circuit c = circuit();
    Circuit optimized = handOptimize(c);
    EXPECT_TRUE(circuitsEquivalent(c, optimized, 1e-6, 6));
    EXPECT_LE(optimized.size(), c.size());
}

TEST_P(RandomCircuitSweep, PhysicalLoweringPreservesSemantics)
{
    Circuit c = circuit();
    Circuit phys = decomposeToPhysical(c);
    EXPECT_TRUE(circuitsEquivalent(c, phys, 1e-6, 6));
}

TEST_P(RandomCircuitSweep, AggregationPreservesSemanticsAndLatency)
{
    Circuit c = circuit();
    CommutationChecker checker;
    AnalyticOracle oracle;
    AggregationOptions options;
    options.maxWidth = 4;
    AggregationResult result =
        aggregateInstructions(c, &checker, oracle, options);
    EXPECT_TRUE(circuitsEquivalent(c, result.circuit, 1e-6, 6));
    double before = scheduleAsap(c, oracle).makespan();
    double after = scheduleAsap(result.circuit, oracle).makespan();
    EXPECT_LE(after, before + 1e-9);
}

TEST_P(RandomCircuitSweep, ClsNeverWorseThanAsapUnderUnitLatency)
{
    // With unit latencies and the commutation-group readiness rule, CLS's
    // matching-based choices can only shorten the schedule relative to
    // program-order ASAP.
    class UnitOracle : public LatencyOracle
    {
      public:
        double latencyNs(const Gate &) override { return 1.0; }
        std::string name() const override { return "unit"; }
    } unit;

    Circuit c = circuit();
    CommutationChecker checker;
    Schedule cls = scheduleCls(c, &checker, unit);
    Schedule asap = scheduleAsap(c, unit);
    EXPECT_TRUE(cls.validate(c.numQubits()));
    EXPECT_LE(cls.makespan(), asap.makespan() + 1e-9);
}

TEST_P(RandomCircuitSweep, ClsScheduleOrderIsEquivalent)
{
    Circuit c = circuit();
    CommutationChecker checker;
    AnalyticOracle oracle;
    Schedule cls = scheduleCls(c, &checker, oracle);
    EXPECT_TRUE(cls.validate(c.numQubits()));
    Circuit reordered = cls.toCircuit(c.numQubits());
    EXPECT_TRUE(circuitsEquivalent(c, reordered, 1e-6, 6));
}

TEST_P(RandomCircuitSweep, CommutationCheckerMatchesMatrices)
{
    // The rule-based fast paths must agree with the explicit unitary
    // check on every gate pair of the circuit.
    Circuit c = circuit();
    CommutationChecker checker;
    const auto &gates = c.gates();
    int checked = 0;
    for (std::size_t i = 0; i < gates.size() && checked < 60; ++i) {
        for (std::size_t j = i + 1; j < gates.size() && checked < 60;
             ++j) {
            std::set<int> joint(gates[i].qubits.begin(),
                                gates[i].qubits.end());
            joint.insert(gates[j].qubits.begin(), gates[j].qubits.end());
            if (joint.size() > 3)
                continue;
            std::vector<int> reg(joint.begin(), joint.end());
            CMatrix a = embedUnitary(gates[i].matrix(), gates[i].qubits,
                                     reg);
            CMatrix b = embedUnitary(gates[j].matrix(), gates[j].qubits,
                                     reg);
            EXPECT_EQ(checker.commute(gates[i], gates[j]),
                      commutes(a, b, 1e-9))
                << gates[i].toString() << " vs " << gates[j].toString();
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST_P(RandomCircuitSweep, OracleStructuralInvariants)
{
    Circuit c = circuit();
    AnalyticOracle oracle;
    double sum = 0.0;
    std::vector<Gate> members;
    for (const Gate &g : c.gates()) {
        double t = oracle.latencyNs(g);
        EXPECT_GE(t, 0.0);
        // Grid alignment.
        EXPECT_NEAR(std::fmod(t + 1e-9, oracle.params().dtGrid), 0.0,
                    1e-6);
        sum += t;
        members.push_back(g);
    }
    // An aggregate of everything can never cost more than running the
    // members back to back.
    Gate all = makeAggregate(members, "all", /*eager_matrix_width=*/0);
    EXPECT_LE(oracle.latencyNs(all), sum + 1e-9);
}

TEST_P(RandomCircuitSweep, RoutersAgreeAcrossTopologies)
{
    // Differential check: on every topology, both routers must produce
    // topology-legal circuits implementing the same logical unitary —
    // the lookahead reordering can never change semantics.
    Circuit c = circuit();
    for (Topology topology :
         {Topology::kRing, Topology::kHeavyHex, Topology::kRandomRegular}) {
        DeviceModel device = deviceForTopology(topology, c.numQubits());
        auto placement = initialPlacement(c, device);
        for (RouterKind router :
             {RouterKind::kBaseline, RouterKind::kLookahead}) {
            RoutingOptions options;
            options.router = router;
            RoutingResult routing =
                routeOnDevice(c, device, placement, options).value();
            EXPECT_TRUE(respectsTopology(routing.physical, device))
                << topologyName(topology) << "/" << routerName(router);
            EXPECT_TRUE(routedEquivalent(c, routing,
                                         device.numQubits()))
                << topologyName(topology) << "/" << routerName(router);
        }
    }
}

TEST_P(RandomCircuitSweep, FullCompilerEquivalenceOnDevice)
{
    Circuit c = circuit();
    Compiler compiler(DeviceModel::gridFor(c.numQubits()));
    CompilationResult r = compiler.compile(c, Strategy::kClsAggregation);
    std::string error;
    EXPECT_TRUE(
        r.schedule.validate(compiler.device().numQubits(), &error))
        << error;
    // Backend stream equals the routed circuit.
    EXPECT_TRUE(circuitsEquivalent(r.routing.physical, r.physicalCircuit,
                                   1e-6, 6));
    // Latency sanity: never worse than the gate-based baseline.
    CompilationResult isa = compiler.compile(c, Strategy::kIsa);
    EXPECT_LE(r.latencyNs, isa.latencyNs + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitSweep,
                         ::testing::Range(0, 8));

class RzzAngleSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RzzAngleSweep, BlockLatencyMatchesDirectPulse)
{
    double theta = GetParam();
    AnalyticOracle oracle;
    Gate block = makeAggregate(
        {makeCnot(0, 1), makeRz(1, theta), makeCnot(0, 1)}, "blk");
    Gate direct = makeRzz(0, 1, theta);
    EXPECT_NEAR(oracle.latencyNs(block), oracle.latencyNs(direct), 1e-9)
        << "theta=" << theta;
    // Both must fold the angle into [0, pi]: latency is periodic.
    Gate wrapped = makeRzz(0, 1, theta + 4.0 * M_PI);
    EXPECT_NEAR(oracle.latencyNs(direct), oracle.latencyNs(wrapped), 0.51)
        << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Angles, RzzAngleSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 1.7, 2.4, 3.1,
                                           4.2, 5.67));

} // namespace
} // namespace qaic
