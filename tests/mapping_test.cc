/**
 * @file
 * Tests for qubit mapping: interaction graphs, recursive-bisection
 * placement, SWAP routing and permutation-aware equivalence.
 */
#include <gtest/gtest.h>

#include "ir/circuit.h"
#include "mapping/mapping.h"
#include "verify/verify.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"

namespace qaic {
namespace {

TEST(InteractionGraphTest, CountsPairs)
{
    Circuit c(3);
    c.add(makeCnot(0, 1));
    c.add(makeCnot(1, 0)); // Same unordered pair.
    c.add(makeCnot(1, 2));
    c.add(makeH(0));
    auto graph = interactionGraph(c);
    EXPECT_EQ((graph[{0, 1}]), 2);
    EXPECT_EQ((graph[{1, 2}]), 1);
    EXPECT_EQ(graph.count({0, 2}), 0u);
}

TEST(PlacementTest, BijectiveAndInRange)
{
    Circuit c = qaoaMaxcut(lineGraph(7));
    DeviceModel dev = DeviceModel::gridFor(7); // 3x3 grid.
    auto placement = initialPlacement(c, dev);
    ASSERT_EQ(placement.size(), 7u);
    std::vector<bool> used(dev.numQubits(), false);
    for (int p : placement) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, dev.numQubits());
        EXPECT_FALSE(used[p]) << "placement not injective";
        used[p] = true;
    }
}

TEST(PlacementTest, KeepsChainNeighborsClose)
{
    // For a line interaction graph on a big-enough grid, the average
    // placed distance of interacting pairs should be far below random
    // (which is ~2.5 on a 5x4 grid).
    Circuit c = qaoaMaxcut(lineGraph(20));
    DeviceModel dev = DeviceModel::gridFor(20);
    auto placement = initialPlacement(c, dev);
    double total = 0.0;
    int pairs = 0;
    for (const auto &[edge, weight] : interactionGraph(c)) {
        total += dev.distance(placement[edge.first],
                              placement[edge.second]);
        ++pairs;
    }
    EXPECT_LT(total / pairs, 2.2);
}

TEST(RoutingTest, OutputRespectsTopology)
{
    Circuit c = qaoaMaxcut(randomRegularGraph(10, 4, 2));
    DeviceModel dev = DeviceModel::gridFor(10);
    auto placement = initialPlacement(c, dev);
    RoutingResult routing = routeOnDevice(c, dev, placement);
    EXPECT_TRUE(respectsTopology(routing.physical, dev));
}

TEST(RoutingTest, NoSwapsWhenAlreadyAdjacent)
{
    Circuit c(3);
    c.add(makeCnot(0, 1));
    c.add(makeCnot(1, 2));
    DeviceModel dev = DeviceModel::line(3);
    RoutingResult routing = routeOnDevice(c, dev, {0, 1, 2});
    EXPECT_EQ(routing.swapCount, 0);
    EXPECT_EQ(routing.physical.size(), c.size());
}

TEST(RoutingTest, InsertsSwapChainForDistantPair)
{
    Circuit c(4);
    c.add(makeCnot(0, 3));
    DeviceModel dev = DeviceModel::line(4);
    RoutingResult routing = routeOnDevice(c, dev, {0, 1, 2, 3});
    EXPECT_EQ(routing.swapCount, 2); // Distance 3 -> 2 swaps.
    EXPECT_TRUE(respectsTopology(routing.physical, dev));
}

TEST(RoutingTest, PermutationAwareEquivalence)
{
    // Routed circuit must implement the logical one modulo placement and
    // the final SWAP-induced permutation.
    Circuit c(4);
    c.add(makeH(0));
    c.add(makeCnot(0, 3));
    c.add(makeRz(3, 0.7));
    c.add(makeCnot(1, 2));
    c.add(makeCnot(3, 0));
    DeviceModel dev = DeviceModel::line(4);
    auto placement = initialPlacement(c, dev);
    RoutingResult routing = routeOnDevice(c, dev, placement);
    EXPECT_TRUE(routedEquivalent(c, routing, dev.numQubits()));
}

TEST(RoutingTest, EquivalenceOnGrid)
{
    Circuit c = qaoaMaxcut(clusterGraph(2, 3, 1)); // 6 qubits, cliques.
    DeviceModel dev = DeviceModel::gridFor(6);
    auto placement = initialPlacement(c, dev);
    RoutingResult routing = routeOnDevice(c, dev, placement);
    EXPECT_TRUE(respectsTopology(routing.physical, dev));
    EXPECT_TRUE(routedEquivalent(c, routing, dev.numQubits()));
}

TEST(RoutingTest, RelabelsAggregateMembers)
{
    // A width-2 aggregate routed to other physical qubits must have its
    // members relabelled consistently.
    Circuit c(3);
    c.add(makeAggregate({makeCnot(0, 2), makeRz(2, 1.0), makeCnot(0, 2)},
                        "blk"));
    DeviceModel dev = DeviceModel::line(3);
    RoutingResult routing = routeOnDevice(c, dev, {0, 1, 2});
    EXPECT_TRUE(respectsTopology(routing.physical, dev));
    EXPECT_TRUE(routedEquivalent(c, routing, dev.numQubits()));
    // The aggregate survived as one instruction.
    int aggs = 0;
    for (const Gate &g : routing.physical.gates())
        if (g.kind == GateKind::kAggregate) {
            ++aggs;
            for (const Gate &m : g.payload->members)
                for (int q : m.qubits)
                    EXPECT_TRUE(g.actsOn(q));
        }
    EXPECT_EQ(aggs, 1);
}

TEST(RoutingTest, ClusterGraphNeedsMoreSwapsThanLine)
{
    // Spatial-locality sanity (paper Section 6.3): a low-locality cluster
    // graph routes with more SWAPs than a line of the same size.
    Circuit line = qaoaMaxcut(lineGraph(30));
    Circuit cluster = qaoaMaxcut(clusterGraph(6, 5, 3));
    DeviceModel dev = DeviceModel::gridFor(30);
    auto route = [&](const Circuit &c) {
        return routeOnDevice(c, dev, initialPlacement(c, dev)).swapCount;
    };
    EXPECT_LT(route(line), route(cluster));
}

TEST(RelabelGateTest, PrimitiveAndAggregate)
{
    std::vector<int> map = {4, 3, 0, 1, 2};
    Gate cnot = relabelGate(makeCnot(0, 2), map);
    EXPECT_EQ(cnot.qubits, (std::vector<int>{4, 0}));

    Gate agg = makeAggregate({makeH(1), makeCnot(1, 3)}, "g");
    Gate relabeled = relabelGate(agg, map);
    EXPECT_EQ(relabeled.qubits, (std::vector<int>{1, 3})); // Sorted {3,1}.
    // Unitary consistency: relabel back and compare.
    std::vector<int> inverse_map(5, -1);
    for (int q = 0; q < 5; ++q)
        inverse_map[map[q]] = q;
    Gate back = relabelGate(relabeled, inverse_map);
    EXPECT_NEAR(phaseDistance(back.matrix(), agg.matrix()), 0.0, 1e-9);
}

} // namespace
} // namespace qaic
