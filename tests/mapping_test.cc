/**
 * @file
 * Tests for qubit mapping: interaction graphs, recursive-bisection
 * placement, SWAP routing (baseline and lookahead) and permutation-aware
 * equivalence, including the cross-topology differential harness that
 * routes the whole benchmark suite over every factory topology.
 */
#include <gtest/gtest.h>

#include "compiler/batch.h"
#include "compiler/compiler.h"
#include "compiler/decompose.h"
#include "device/topology.h"
#include "ir/circuit.h"
#include "mapping/mapping.h"
#include "verify/verify.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"
#include "workloads/suite.h"

namespace qaic {
namespace {

RoutingOptions
withRouter(RouterKind router)
{
    RoutingOptions options;
    options.router = router;
    return options;
}

TEST(InteractionGraphTest, CountsPairs)
{
    Circuit c(3);
    c.add(makeCnot(0, 1));
    c.add(makeCnot(1, 0)); // Same unordered pair.
    c.add(makeCnot(1, 2));
    c.add(makeH(0));
    auto graph = interactionGraph(c);
    EXPECT_EQ((graph[{0, 1}]), 2);
    EXPECT_EQ((graph[{1, 2}]), 1);
    EXPECT_EQ(graph.count({0, 2}), 0u);
}

TEST(PlacementTest, BijectiveAndInRange)
{
    Circuit c = qaoaMaxcut(lineGraph(7));
    DeviceModel dev = DeviceModel::gridFor(7); // 3x3 grid.
    auto placement = initialPlacement(c, dev);
    ASSERT_EQ(placement.size(), 7u);
    std::vector<bool> used(dev.numQubits(), false);
    for (int p : placement) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, dev.numQubits());
        EXPECT_FALSE(used[p]) << "placement not injective";
        used[p] = true;
    }
}

TEST(PlacementTest, KeepsChainNeighborsClose)
{
    // For a line interaction graph on a big-enough grid, the average
    // placed distance of interacting pairs should be far below random
    // (which is ~2.5 on a 5x4 grid).
    Circuit c = qaoaMaxcut(lineGraph(20));
    DeviceModel dev = DeviceModel::gridFor(20);
    auto placement = initialPlacement(c, dev);
    double total = 0.0;
    int pairs = 0;
    for (const auto &[edge, weight] : interactionGraph(c)) {
        total += dev.distance(placement[edge.first],
                              placement[edge.second]);
        ++pairs;
    }
    EXPECT_LT(total / pairs, 2.2);
}

TEST(RoutingTest, OutputRespectsTopology)
{
    Circuit c = qaoaMaxcut(randomRegularGraph(10, 4, 2));
    DeviceModel dev = DeviceModel::gridFor(10);
    auto placement = initialPlacement(c, dev);
    RoutingResult routing = routeOnDevice(c, dev, placement).value();
    EXPECT_TRUE(respectsTopology(routing.physical, dev));
}

TEST(RoutingTest, NoSwapsWhenAlreadyAdjacent)
{
    Circuit c(3);
    c.add(makeCnot(0, 1));
    c.add(makeCnot(1, 2));
    DeviceModel dev = DeviceModel::line(3);
    RoutingResult routing = routeOnDevice(c, dev, {0, 1, 2}).value();
    EXPECT_EQ(routing.swapCount, 0);
    EXPECT_EQ(routing.physical.size(), c.size());
}

TEST(RoutingTest, InsertsSwapChainForDistantPair)
{
    Circuit c(4);
    c.add(makeCnot(0, 3));
    DeviceModel dev = DeviceModel::line(4);
    RoutingResult routing =
        routeOnDevice(c, dev, {0, 1, 2, 3}).value();
    EXPECT_EQ(routing.swapCount, 2); // Distance 3 -> 2 swaps.
    EXPECT_TRUE(respectsTopology(routing.physical, dev));
}

TEST(RoutingTest, PermutationAwareEquivalence)
{
    // Routed circuit must implement the logical one modulo placement and
    // the final SWAP-induced permutation.
    Circuit c(4);
    c.add(makeH(0));
    c.add(makeCnot(0, 3));
    c.add(makeRz(3, 0.7));
    c.add(makeCnot(1, 2));
    c.add(makeCnot(3, 0));
    DeviceModel dev = DeviceModel::line(4);
    auto placement = initialPlacement(c, dev);
    RoutingResult routing = routeOnDevice(c, dev, placement).value();
    EXPECT_TRUE(routedEquivalent(c, routing, dev.numQubits()));
}

TEST(RoutingTest, EquivalenceOnGrid)
{
    Circuit c = qaoaMaxcut(clusterGraph(2, 3, 1)); // 6 qubits, cliques.
    DeviceModel dev = DeviceModel::gridFor(6);
    auto placement = initialPlacement(c, dev);
    RoutingResult routing = routeOnDevice(c, dev, placement).value();
    EXPECT_TRUE(respectsTopology(routing.physical, dev));
    EXPECT_TRUE(routedEquivalent(c, routing, dev.numQubits()));
}

TEST(RoutingTest, RelabelsAggregateMembers)
{
    // A width-2 aggregate routed to other physical qubits must have its
    // members relabelled consistently.
    Circuit c(3);
    c.add(makeAggregate({makeCnot(0, 2), makeRz(2, 1.0), makeCnot(0, 2)},
                        "blk"));
    DeviceModel dev = DeviceModel::line(3);
    RoutingResult routing = routeOnDevice(c, dev, {0, 1, 2}).value();
    EXPECT_TRUE(respectsTopology(routing.physical, dev));
    EXPECT_TRUE(routedEquivalent(c, routing, dev.numQubits()));
    // The aggregate survived as one instruction.
    int aggs = 0;
    for (const Gate &g : routing.physical.gates())
        if (g.kind == GateKind::kAggregate) {
            ++aggs;
            for (const Gate &m : g.payload->members)
                for (int q : m.qubits)
                    EXPECT_TRUE(g.actsOn(q));
        }
    EXPECT_EQ(aggs, 1);
}

TEST(RoutingTest, ClusterGraphNeedsMoreSwapsThanLine)
{
    // Spatial-locality sanity (paper Section 6.3): a low-locality cluster
    // graph routes with more SWAPs than a line of the same size.
    Circuit line = qaoaMaxcut(lineGraph(30));
    Circuit cluster = qaoaMaxcut(clusterGraph(6, 5, 3));
    DeviceModel dev = DeviceModel::gridFor(30);
    auto route = [&](const Circuit &c) {
        return routeOnDevice(c, dev, initialPlacement(c, dev))
            .value()
            .swapCount;
    };
    EXPECT_LT(route(line), route(cluster));
}

// --- Cross-topology differential harness -----------------------------

/**
 * Routes every benchmark-suite circuit on every factory topology with
 * both routers. Topology legality is asserted always; permutation-aware
 * simulator equivalence whenever the physical register is small enough
 * to simulate quickly (the suite is scaled down, so that covers all but
 * the widest Grover instances).
 */
TEST(CrossTopologyTest, SuiteRoutesEquivalentlyEverywhere)
{
    constexpr int kMaxSimQubits = 10;
    int equivalence_checked = 0;
    for (const BenchmarkSpec &spec : paperBenchmarkSuite(/*scale=*/0.15)) {
        Circuit lowered = decomposeCcx(spec.circuit);
        for (Topology topology : kAllTopologies) {
            DeviceModel device =
                deviceForTopology(topology, lowered.numQubits());
            auto placement = initialPlacement(lowered, device);
            for (RouterKind router :
                 {RouterKind::kBaseline, RouterKind::kLookahead}) {
                RoutingResult routing =
                    routeOnDevice(lowered, device, placement,
                                  withRouter(router))
                        .value();
                ASSERT_TRUE(respectsTopology(routing.physical, device))
                    << spec.name << " on " << topologyName(topology)
                    << " via " << routerName(router);
                if (device.numQubits() <= kMaxSimQubits) {
                    EXPECT_TRUE(routedEquivalent(lowered, routing,
                                                 device.numQubits(),
                                                 1e-6, /*samples=*/2))
                        << spec.name << " on " << topologyName(topology)
                        << " via " << routerName(router);
                    ++equivalence_checked;
                }
            }
        }
    }
    // The scaled suite must actually exercise the simulator check on
    // most workload x topology combinations, not silently skip them.
    EXPECT_GE(equivalence_checked, 80);
}

/**
 * The PR's acceptance bar: on the grid and heavy-hex topologies the
 * lookahead router never inserts more SWAPs than the baseline on any
 * full-scale suite workload (guaranteed by the never-worse guard) and
 * wins strictly on at least three.
 */
TEST(CrossTopologyTest, LookaheadNeverWorseOnGridAndHeavyHex)
{
    int strictly_fewer = 0;
    for (const BenchmarkSpec &spec : paperBenchmarkSuite(/*scale=*/1.0)) {
        Circuit lowered = decomposeCcx(spec.circuit);
        for (Topology topology : {Topology::kGrid, Topology::kHeavyHex}) {
            DeviceModel device =
                deviceForTopology(topology, lowered.numQubits());
            auto placement = initialPlacement(lowered, device);
            int base = routeOnDevice(lowered, device, placement,
                                     withRouter(RouterKind::kBaseline))
                           .value()
                           .swapCount;
            int look = routeOnDevice(lowered, device, placement,
                                     withRouter(RouterKind::kLookahead))
                           .value()
                           .swapCount;
            EXPECT_LE(look, base)
                << spec.name << " on " << topologyName(topology);
            if (look < base)
                ++strictly_fewer;
        }
    }
    EXPECT_GE(strictly_fewer, 3);
}

// --- Router edge cases ------------------------------------------------

TEST(RouterEdgeCaseTest, DeviceLargerThanCircuit)
{
    // 3 logical qubits scattered over a 9-qubit grid: SWAPs through
    // unoccupied physical qubits must stay consistent.
    Circuit c(3);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    c.add(makeCnot(1, 2));
    c.add(makeCnot(2, 0));
    DeviceModel dev = DeviceModel::grid(3, 3);
    std::vector<int> corners = {0, 8, 6};
    for (RouterKind router :
         {RouterKind::kBaseline, RouterKind::kLookahead}) {
        RoutingResult routing =
            routeOnDevice(c, dev, corners, withRouter(router)).value();
        EXPECT_TRUE(respectsTopology(routing.physical, dev));
        EXPECT_TRUE(routedEquivalent(c, routing, dev.numQubits()));
        EXPECT_EQ(routing.finalMapping.size(), 3u);
    }
}

TEST(RouterEdgeCaseTest, AlreadyAdjacentInsertsNoSwaps)
{
    Circuit c(3);
    c.add(makeCnot(0, 1));
    c.add(makeCz(1, 2));
    c.add(makeCnot(0, 1));
    DeviceModel dev = DeviceModel::line(3);
    for (RouterKind router :
         {RouterKind::kBaseline, RouterKind::kLookahead}) {
        RoutingResult routing =
            routeOnDevice(c, dev, {0, 1, 2}, withRouter(router)).value();
        EXPECT_EQ(routing.swapCount, 0) << routerName(router);
        EXPECT_EQ(routing.physical.size(), c.size());
        EXPECT_EQ(routing.finalMapping, routing.initialMapping);
    }
}

TEST(RouterEdgeCaseTest, SingleQubitOnlyCircuit)
{
    Circuit c(4);
    c.add(makeH(0));
    c.add(makeT(2));
    c.add(makeRz(3, 0.4));
    c.add(makeX(1));
    for (RouterKind router :
         {RouterKind::kBaseline, RouterKind::kLookahead}) {
        RoutingResult routing =
            routeOnDevice(c, ringDevice(5), {4, 2, 0, 1},
                          withRouter(router))
                .value();
        EXPECT_EQ(routing.swapCount, 0) << routerName(router);
        EXPECT_EQ(routing.physical.size(), c.size());
        EXPECT_TRUE(routedEquivalent(c, routing, 5));
    }
}

TEST(RouterEdgeCaseTest, DisconnectedPairRejectedWithClearError)
{
    // Two separate 2-qubit islands; a gate across them cannot route.
    // A device config that cannot run the circuit is recoverable user
    // error: kInvalidArgument naming the culprits, not process death.
    Circuit c(4);
    c.add(makeCnot(0, 3));
    DeviceModel split(4, {{0, 1}, {2, 3}});
    for (RouterKind router :
         {RouterKind::kBaseline, RouterKind::kLookahead}) {
        StatusOr<RoutingResult> routed =
            routeOnDevice(c, split, {0, 1, 2, 3}, withRouter(router));
        ASSERT_FALSE(routed.isOk()) << routerName(router);
        EXPECT_EQ(routed.status().code(), StatusCode::kInvalidArgument);
        EXPECT_NE(routed.status().message().find("disconnected"),
                  std::string::npos)
            << routed.status().toString();
        EXPECT_NE(routed.status().message().find("0"), std::string::npos);
        EXPECT_NE(routed.status().message().find("3"), std::string::npos);
    }
}

// --- Determinism ------------------------------------------------------

TEST(RouterDeterminismTest, RepeatedRunsAreBitwiseIdentical)
{
    Circuit c = qaoaMaxcut(randomRegularGraph(12, 4, 9));
    DeviceModel dev = heavyHexDeviceFor(12);
    auto placement = initialPlacement(c, dev, /*seed=*/3);
    for (RouterKind router :
         {RouterKind::kBaseline, RouterKind::kLookahead}) {
        RoutingResult a =
            routeOnDevice(c, dev, placement, withRouter(router)).value();
        RoutingResult b =
            routeOnDevice(c, dev, placement, withRouter(router)).value();
        EXPECT_EQ(a.swapCount, b.swapCount);
        EXPECT_EQ(a.initialMapping, b.initialMapping);
        EXPECT_EQ(a.finalMapping, b.finalMapping);
        EXPECT_EQ(a.physical.toString(), b.physical.toString());
    }
}

TEST(RouterDeterminismTest, CompileBatchMatchesSequentialRouting)
{
    // Same seeds and inputs must give bitwise-identical RoutingResults
    // whether compiled sequentially or under batch concurrency.
    std::vector<Circuit> circuits;
    for (const BenchmarkSpec &spec : paperBenchmarkSuite(/*scale=*/0.15))
        if (circuits.size() < 6)
            circuits.push_back(decomposeCcx(spec.circuit));
    int width = 0;
    for (const Circuit &c : circuits)
        width = std::max(width, c.numQubits());
    DeviceModel device = heavyHexDeviceFor(width);
    CompilerOptions options;

    auto one_thread = unwrapBatch(compileBatch(
        device, circuits, Strategy::kIsa, options, /*threads=*/1));
    auto four_threads = unwrapBatch(compileBatch(
        device, circuits, Strategy::kIsa, options, /*threads=*/4));
    Compiler compiler(device, options);
    ASSERT_EQ(one_thread.size(), circuits.size());
    for (std::size_t i = 0; i < circuits.size(); ++i) {
        CompilationResult sequential =
            compiler.compile(circuits[i], Strategy::kIsa);
        for (const CompilationResult *r :
             {&one_thread[i], &four_threads[i]}) {
            EXPECT_EQ(r->routing.swapCount,
                      sequential.routing.swapCount);
            EXPECT_EQ(r->routing.initialMapping,
                      sequential.routing.initialMapping);
            EXPECT_EQ(r->routing.finalMapping,
                      sequential.routing.finalMapping);
            EXPECT_EQ(r->routing.physical.toString(),
                      sequential.routing.physical.toString());
        }
    }
}

TEST(RelabelGateTest, PrimitiveAndAggregate)
{
    std::vector<int> map = {4, 3, 0, 1, 2};
    Gate cnot = relabelGate(makeCnot(0, 2), map);
    EXPECT_EQ(cnot.qubits, (std::vector<int>{4, 0}));

    Gate agg = makeAggregate({makeH(1), makeCnot(1, 3)}, "g");
    Gate relabeled = relabelGate(agg, map);
    EXPECT_EQ(relabeled.qubits, (std::vector<int>{1, 3})); // Sorted {3,1}.
    // Unitary consistency: relabel back and compare.
    std::vector<int> inverse_map(5, -1);
    for (int q = 0; q < 5; ++q)
        inverse_map[map[q]] = q;
    Gate back = relabelGate(relabeled, inverse_map);
    EXPECT_NEAR(phaseDistance(back.matrix(), agg.matrix()), 0.0, 1e-9);
}

} // namespace
} // namespace qaic
