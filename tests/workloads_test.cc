/**
 * @file
 * Tests for the benchmark workload generators: graph properties, circuit
 * structure, and functional correctness of the reversible arithmetic and
 * Pauli-exponential substrates.
 */
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "ir/embed.h"
#include "ir/qasm.h"
#include "la/expm.h"
#include "verify/verify.h"
#include "workloads/arith.h"
#include "workloads/graphs.h"
#include "workloads/grover.h"
#include "workloads/ising.h"
#include "workloads/qaoa.h"
#include "workloads/qft.h"
#include "workloads/suite.h"
#include "workloads/uccsd.h"

namespace qaic {
namespace {

// ----------------------------------------------------------------- Graphs

TEST(GraphTest, LineGraph)
{
    Graph g = lineGraph(5);
    EXPECT_EQ(g.n, 5);
    EXPECT_EQ(g.edges.size(), 4u);
}

TEST(GraphTest, RegularGraphDegrees)
{
    Graph g = randomRegularGraph(12, 4, 7);
    std::vector<int> degree(12, 0);
    std::set<std::pair<int, int>> seen;
    for (auto [u, v] : g.edges) {
        EXPECT_NE(u, v);
        EXPECT_TRUE(seen.emplace(std::min(u, v), std::max(u, v)).second)
            << "parallel edge";
        ++degree[u];
        ++degree[v];
    }
    for (int d : degree)
        EXPECT_EQ(d, 4);
}

TEST(GraphTest, RegularGraphDeterministicPerSeed)
{
    Graph a = randomRegularGraph(10, 4, 3);
    Graph b = randomRegularGraph(10, 4, 3);
    EXPECT_EQ(a.edges, b.edges);
}

TEST(GraphTest, ClusterGraphStructure)
{
    Graph g = clusterGraph(3, 4, 1);
    EXPECT_EQ(g.n, 12);
    // 3 cliques of C(4,2)=6 edges + 2 connectors.
    EXPECT_EQ(g.edges.size(), 3u * 6 + 2);
}

// ------------------------------------------------------------------ QAOA

TEST(QaoaTest, TriangleMatchesPaperExample)
{
    Circuit c = qaoaTriangleExample();
    EXPECT_EQ(c.numQubits(), 3);
    auto counts = c.gateCounts();
    EXPECT_EQ(counts["h"], 3);
    EXPECT_EQ(counts["cnot"], 6);
    EXPECT_EQ(counts["rz"], 3);
    EXPECT_EQ(counts["rx"], 3);
}

TEST(QaoaTest, CostLayerIsDiagonalCommuting)
{
    // The ZZ blocks of QAOA commute: applying edges in any order gives
    // the same unitary.
    Graph g = lineGraph(4);
    Circuit forward = qaoaMaxcut(g);
    Graph reversed = g;
    std::reverse(reversed.edges.begin(), reversed.edges.end());
    Circuit backward = qaoaMaxcut(reversed);
    EXPECT_TRUE(circuitsEquivalent(forward, backward));
}

TEST(QaoaTest, MultiLevel)
{
    Circuit c = qaoaMaxcut(lineGraph(4), {{0.5, 0.2}, {0.7, 0.4}});
    // Two cost layers -> 2 * 3 edges * 3 gates + 4 H + 2 * 4 Rx.
    EXPECT_EQ(c.size(), 4u + 2 * (3 * 3 + 4));
}

// ----------------------------------------------------------------- Ising

TEST(IsingTest, GateBudget)
{
    IsingParams p;
    p.steps = 2;
    Circuit c = isingChain(6, p);
    EXPECT_EQ(c.numQubits(), 6);
    auto counts = c.gateCounts();
    // Per step: 5 bonds * (2 CNOT + 1 Rz) + 6 Rx; plus 6 initial H.
    EXPECT_EQ(counts["h"], 6);
    EXPECT_EQ(counts["cnot"], 2 * 5 * 2);
    EXPECT_EQ(counts["rx"], 2 * 6);
}

TEST(IsingTest, EvenOddLayersAreParallel)
{
    Circuit c = isingChain(8, {1, 0.5, 0.5});
    // Depth should be far below gate count thanks to bond parallelism.
    EXPECT_LT(c.depth(), static_cast<int>(c.size()) / 3);
}

// ------------------------------------------------------- Arithmetic bits

TEST(ArithTest, ToffoliDecompositionIsExact)
{
    Circuit c(3);
    appendToffoli(c, 0, 1, 2);
    EXPECT_NEAR(phaseDistance(c.unitary(), makeCcx(0, 1, 2).matrix()), 0.0,
                1e-9);
}

class IncrementSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(IncrementSweep, ControlledIncrementSemantics)
{
    auto [width, value, control] = GetParam();
    // Registers: control = q0, bits = q1..q_width, carries after that.
    int n = 1 + width + std::max(0, width - 1);
    Circuit c(n);
    std::vector<int> bits, carries;
    for (int i = 0; i < width; ++i)
        bits.push_back(1 + i);
    for (int i = 0; i + 1 < width; ++i)
        carries.push_back(1 + width + i);
    appendControlledIncrement(c, 0, bits, carries);

    // Build the input basis state |control, value, 0...>.
    std::size_t index = 0;
    if (control)
        index |= std::size_t(1) << (n - 1); // q0 is MSB.
    for (int i = 0; i < width; ++i)
        if (value >> i & 1)
            index |= std::size_t(1) << (n - 1 - bits[i]);
    StateVector sv = StateVector::basis(n, index);
    sv.apply(c);

    // Expected: value + control (mod 2^width), carries clean.
    int expected = (value + control) & ((1 << width) - 1);
    std::size_t expect_index = 0;
    if (control)
        expect_index |= std::size_t(1) << (n - 1);
    for (int i = 0; i < width; ++i)
        if (expected >> i & 1)
            expect_index |= std::size_t(1) << (n - 1 - bits[i]);
    EXPECT_NEAR(std::abs(sv.amplitudes()[expect_index]), 1.0, 1e-6)
        << "width=" << width << " value=" << value
        << " control=" << control;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IncrementSweep,
    ::testing::Values(std::make_tuple(1, 0, 1), std::make_tuple(1, 1, 1),
                      std::make_tuple(2, 0, 1), std::make_tuple(2, 3, 1),
                      std::make_tuple(3, 5, 1), std::make_tuple(3, 7, 1),
                      std::make_tuple(3, 2, 0), std::make_tuple(4, 11, 1)));

TEST(ArithTest, MultiControlledZPhase)
{
    // 3 controls + target: phase flips exactly the all-ones state.
    int n = 6; // 4 data + 2 ancillas.
    Circuit c(n);
    appendMultiControlledZ(c, {0, 1, 2}, 3, {4, 5});
    CMatrix u = c.unitary();
    for (std::size_t i = 0; i < 16; ++i) {
        std::size_t full = i << 2; // Ancillas zero.
        double expect = i == 15 ? -1.0 : 1.0;
        EXPECT_NEAR((u(full, full) - Cmplx(expect, 0)).real(), 0.0, 1e-9)
            << i;
    }
}

TEST(ArithTest, InverseCircuitUndoes)
{
    Circuit c(3);
    c.add(makeH(0));
    c.add(makeT(1));
    c.add(makeCnot(0, 1));
    c.add(makeRz(2, 0.77));
    appendToffoli(c, 0, 1, 2);
    Circuit undo = inverseCircuit(c);
    Circuit both(3);
    both.append(c);
    both.append(undo);
    EXPECT_NEAR(phaseDistance(both.unitary(), CMatrix::identity(8)), 0.0,
                1e-8);
}

// ---------------------------------------------------------------- Grover

TEST(GroverTest, LayoutAndSize)
{
    GroverSqrtLayout layout = groverSqrtLayout(3);
    EXPECT_EQ(layout.total, 9);
    Circuit c = groverSquareRoot(3, 1);
    EXPECT_EQ(c.numQubits(), 9);
    EXPECT_GT(c.size(), 100u);
    EXPECT_LE(c.maxGateWidth(), 2);
}

TEST(GroverTest, OracleAmplifiesSquareRoots)
{
    // One Grover iteration on n=3, target = 4: solutions x with
    // x^2 = 4 (mod 8) are {2, 6} — a quarter of the space, so a single
    // iteration rotates essentially all amplitude onto them
    // (sin^2(3 * 30deg) = 1).
    GroverSqrtLayout layout = groverSqrtLayout(3);
    Circuit full = groverSquareRoot(3, 4, 1);

    StateVector sv(layout.total);
    sv.apply(full);
    double solution_mass = 0.0, other_mass = 0.0;
    const int n = 3;
    for (std::size_t idx = 0; idx < sv.amplitudes().size(); ++idx) {
        double p = std::norm(sv.amplitudes()[idx]);
        if (p < 1e-12)
            continue;
        // Bit i of x lives on qubit layout.x[i] = i, which is index bit
        // (total-1-i): decode with the bit order reversed.
        int x = 0;
        for (int i = 0; i < n; ++i)
            if (idx >> (layout.total - 1 - i) & 1)
                x |= 1 << i;
        if (((x * x) & 7) == 4)
            solution_mass += p;
        else
            other_mass += p;
    }
    EXPECT_GT(solution_mass, 0.95);
    EXPECT_LT(other_mass, 0.05);
}

// ----------------------------------------------------------------- UCCSD

TEST(PauliExpTest, MatchesExactExponential)
{
    struct Case
    {
        std::vector<PauliFactor> pauli;
        double theta;
    };
    std::vector<Case> cases = {
        {{{0, 'Z'}}, 0.8},
        {{{0, 'X'}}, 1.1},
        {{{0, 'Y'}}, -0.6},
        {{{0, 'Z'}, {1, 'Z'}}, 0.9},
        {{{0, 'X'}, {1, 'Y'}}, 0.7},
        {{{0, 'Y'}, {1, 'Z'}, {2, 'X'}}, -1.2},
    };
    for (const Case &tc : cases) {
        int n = 0;
        for (auto [q, a] : tc.pauli)
            n = std::max(n, q + 1);
        Circuit c(n);
        appendPauliExponential(c, tc.pauli, tc.theta);

        // Exact target: exp(-i theta/2 P).
        std::vector<int> reg(n);
        for (int q = 0; q < n; ++q)
            reg[q] = q;
        CMatrix p = CMatrix::identity(std::size_t(1) << n);
        for (auto [q, axis] : tc.pauli) {
            Gate pg = axis == 'X' ? makeX(q)
                      : axis == 'Y' ? makeY(q)
                                    : makeZ(q);
            p = embedUnitary(pg.matrix(), {q}, reg) * p;
        }
        CMatrix target = expiHermitian(p, tc.theta / 2.0);
        EXPECT_NEAR(phaseDistance(c.unitary(), target), 0.0, 1e-7)
            << "theta=" << tc.theta;
    }
}

TEST(UccsdTest, StructureAndDeterminism)
{
    Circuit a = uccsdAnsatz(4);
    Circuit b = uccsdAnsatz(4);
    EXPECT_EQ(toQasm(a), toQasm(b));
    EXPECT_EQ(a.size(), b.size());
    EXPECT_EQ(a.numQubits(), 4);
    // Singles: 2 occ * 2 virt * 2 strings; doubles: 1*1*8 strings.
    // Just sanity-check the scale.
    EXPECT_GT(a.size(), 50u);
    EXPECT_LE(a.maxGateWidth(), 2);
}

TEST(UccsdTest, LowCommutativityStructure)
{
    // UCCSD circuits are deep relative to their size (serial).
    Circuit c = uccsdAnsatz(4);
    EXPECT_GT(c.depth() * 2, static_cast<int>(c.size()) / 2);
}

// ------------------------------------------------------------------- QFT

TEST(QftTest, MatchesExactTransform)
{
    const int n = 3;
    Circuit c = qft(n, /*with_swaps=*/true);
    const std::size_t dim = 8;
    CMatrix expect(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t k = 0; k < dim; ++k)
            expect(r, k) = std::exp(Cmplx(
                               0, 2.0 * M_PI * double(r * k) / dim)) *
                           (1.0 / std::sqrt(double(dim)));
    EXPECT_NEAR(phaseDistance(c.unitary(), expect), 0.0, 1e-7);
}

// ----------------------------------------------------------------- Suite

TEST(SuiteTest, AllTenBenchmarksPresent)
{
    auto suite = paperBenchmarkSuite();
    ASSERT_EQ(suite.size(), 10u);
    std::set<std::string> names;
    for (const auto &s : suite) {
        names.insert(s.name);
        EXPECT_GT(s.circuit.size(), 0u);
        EXPECT_LE(s.circuit.maxGateWidth(), 2);
    }
    EXPECT_EQ(names.size(), 10u);
    EXPECT_TRUE(names.count("MAXCUT-line"));
    EXPECT_TRUE(names.count("sqrt-n5"));
    EXPECT_TRUE(names.count("UCCSD-n6"));
}

TEST(SuiteTest, ScaleShrinksCircuits)
{
    auto full = benchmarkByName("Ising-n30", 1.0);
    auto small = benchmarkByName("Ising-n30", 0.3);
    EXPECT_LT(small.circuit.numQubits(), full.circuit.numQubits());
}

TEST(SuiteTest, UnknownNameFatals)
{
    EXPECT_DEATH(benchmarkByName("nope"), "unknown benchmark");
}

} // namespace
} // namespace qaic
