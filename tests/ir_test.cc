/**
 * @file
 * Tests for the gate/circuit IR: gate matrices, embedding, circuit
 * unitaries, aggregates and the text format.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "ir/circuit.h"
#include "ir/embed.h"
#include "ir/gate.h"
#include "ir/qasm.h"
#include "test_util.h"

namespace qaic {
namespace {

TEST(GateTest, AllKindsAreUnitary)
{
    std::vector<Gate> gates = {
        makeId(0),      makeX(0),        makeY(0),        makeZ(0),
        makeH(0),       makeS(0),        makeSdg(0),      makeT(0),
        makeTdg(0),     makeRx(0, 1.1),  makeRy(0, -0.4), makeRz(0, 2.7),
        makeCnot(0, 1), makeCz(0, 1),    makeSwap(0, 1),  makeIswap(0, 1),
        makeRzz(0, 1, 0.9), makeCcx(0, 1, 2)};
    for (const Gate &g : gates)
        EXPECT_TRUE(g.matrix().isUnitary(1e-12)) << g.toString();
}

TEST(GateTest, CnotActionOnBasis)
{
    CMatrix u = makeCnot(0, 1).matrix();
    // |10> -> |11>, |11> -> |10>, |00>,|01> fixed.
    EXPECT_EQ(u(3, 2), Cmplx(1, 0));
    EXPECT_EQ(u(2, 3), Cmplx(1, 0));
    EXPECT_EQ(u(0, 0), Cmplx(1, 0));
    EXPECT_EQ(u(1, 1), Cmplx(1, 0));
}

TEST(GateTest, IswapPhases)
{
    CMatrix u = makeIswap(0, 1).matrix();
    EXPECT_EQ(u(1, 2), Cmplx(0, 1));
    EXPECT_EQ(u(2, 1), Cmplx(0, 1));
    EXPECT_EQ(u(0, 0), Cmplx(1, 0));
    EXPECT_EQ(u(3, 3), Cmplx(1, 0));
}

TEST(GateTest, RzzIsDiagonalAndMatchesCnotRzCnot)
{
    double theta = 1.23;
    Gate rzz = makeRzz(0, 1, theta);
    EXPECT_TRUE(rzz.isDiagonal());

    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeRz(1, theta));
    c.add(makeCnot(0, 1));
    EXPECT_NEAR(phaseDistance(c.unitary(), rzz.matrix()), 0.0, 1e-9);
}

TEST(GateTest, HadamardSquaresToIdentity)
{
    CMatrix h = makeH(0).matrix();
    EXPECT_TRUE((h * h).approxEqual(CMatrix::identity(2), 1e-12));
}

TEST(GateTest, SEqualsRzUpToPhase)
{
    EXPECT_NEAR(
        phaseDistance(makeS(0).matrix(), makeRz(0, M_PI / 2).matrix()), 0.0,
        1e-7);
    EXPECT_NEAR(
        phaseDistance(makeT(0).matrix(), makeRz(0, M_PI / 4).matrix()), 0.0,
        1e-7);
}

TEST(GateTest, DiagonalClassification)
{
    EXPECT_TRUE(makeRz(0, 0.3).isDiagonal());
    EXPECT_TRUE(makeCz(0, 1).isDiagonal());
    EXPECT_FALSE(makeH(0).isDiagonal());
    EXPECT_FALSE(makeCnot(0, 1).isDiagonal());
    EXPECT_FALSE(makeIswap(0, 1).isDiagonal());
}

TEST(EmbedTest, SingleQubitOnTwoQubitRegister)
{
    CMatrix x = makeX(0).matrix();
    // X on qubit 1 (LSB) of a 2-qubit register = I (x) X.
    CMatrix embedded = embedUnitary(x, {1}, {0, 1});
    CMatrix expect = CMatrix::identity(2).kron(x);
    EXPECT_TRUE(embedded.approxEqual(expect, 1e-12));
    // X on qubit 0 (MSB) = X (x) I.
    embedded = embedUnitary(x, {0}, {0, 1});
    expect = x.kron(CMatrix::identity(2));
    EXPECT_TRUE(embedded.approxEqual(expect, 1e-12));
}

TEST(EmbedTest, ReversedQubitOrderTransposesControl)
{
    // CNOT with control q1, target q0 on register (q0, q1).
    CMatrix u = embedUnitary(makeCnot(0, 1).matrix(), {1, 0}, {0, 1});
    // |01> -> |11>, |11> -> |01>.
    EXPECT_EQ(u(3, 1), Cmplx(1, 0));
    EXPECT_EQ(u(1, 3), Cmplx(1, 0));
    EXPECT_EQ(u(0, 0), Cmplx(1, 0));
    EXPECT_EQ(u(2, 2), Cmplx(1, 0));
}

TEST(EmbedTest, PreservesUnitarity)
{
    Rng rng(42);
    CMatrix u = testing::randomUnitary(4, rng);
    CMatrix e = embedUnitary(u, {3, 1}, {0, 1, 2, 3, 4});
    EXPECT_TRUE(e.isUnitary(1e-9));
}

TEST(CircuitTest, SwapEqualsThreeCnots)
{
    Circuit c(2);
    c.add(makeCnot(0, 1));
    c.add(makeCnot(1, 0));
    c.add(makeCnot(0, 1));
    EXPECT_NEAR(phaseDistance(c.unitary(), makeSwap(0, 1).matrix()), 0.0,
                1e-9);
}

TEST(CircuitTest, CzFromHadamardConjugation)
{
    Circuit c(2);
    c.add(makeH(1));
    c.add(makeCnot(0, 1));
    c.add(makeH(1));
    EXPECT_NEAR(phaseDistance(c.unitary(), makeCz(0, 1).matrix()), 0.0,
                1e-9);
}

TEST(CircuitTest, DepthTracksConflicts)
{
    Circuit c(3);
    c.add(makeH(0));
    c.add(makeH(1));
    c.add(makeH(2));
    EXPECT_EQ(c.depth(), 1);
    c.add(makeCnot(0, 1));
    EXPECT_EQ(c.depth(), 2);
    c.add(makeCnot(1, 2));
    EXPECT_EQ(c.depth(), 3);
}

TEST(CircuitTest, GateCountsAndWidth)
{
    Circuit c(3);
    c.add(makeH(0));
    c.add(makeH(1));
    c.add(makeCnot(0, 1));
    c.add(makeCcx(0, 1, 2));
    auto counts = c.gateCounts();
    EXPECT_EQ(counts["h"], 2);
    EXPECT_EQ(counts["cnot"], 1);
    EXPECT_EQ(c.maxGateWidth(), 3);
    EXPECT_EQ(c.twoQubitGateCount(), 2u);
}

TEST(AggregateTest, UnitaryMatchesMemberProduct)
{
    std::vector<Gate> members = {makeCnot(0, 1), makeRz(1, 5.67),
                                 makeCnot(0, 1)};
    Gate agg = makeAggregate(members, "G");
    EXPECT_EQ(agg.width(), 2);

    Circuit c(2);
    for (const Gate &m : members)
        c.add(m);
    EXPECT_NEAR(phaseDistance(agg.matrix(), c.unitary()), 0.0, 1e-9);
    // CNOT-Rz-CNOT is a diagonal unitary — the paper's key detection case.
    EXPECT_TRUE(agg.isDiagonal());
}

TEST(AggregateTest, SupportIsSortedUnion)
{
    Gate agg = makeAggregate({makeCnot(3, 1), makeH(2)}, "G");
    EXPECT_EQ(agg.qubits, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(agg.matrix().rows(), 8u);
}

TEST(AggregateTest, NonAdjacentSupportQubits)
{
    // Aggregate acting on qubits {0, 2} of a 3-qubit circuit.
    Gate agg = makeAggregate({makeCnot(0, 2)}, "G");
    Circuit c(3);
    c.add(agg);
    Circuit ref(3);
    ref.add(makeCnot(0, 2));
    EXPECT_NEAR(phaseDistance(c.unitary(), ref.unitary()), 0.0, 1e-9);
}

TEST(QasmTest, RoundTrip)
{
    Circuit c(3);
    c.add(makeH(0));
    c.add(makeCnot(0, 1));
    c.add(makeRz(2, 5.67));
    c.add(makeRzz(1, 2, 1.26));
    c.add(makeCcx(0, 1, 2));

    std::string text = toQasm(c);
    auto parsed = parseQasm(text);
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed->numQubits(), 3);
    ASSERT_EQ(parsed->size(), c.size());
    EXPECT_NEAR(phaseDistance(parsed->unitary(), c.unitary()), 0.0, 1e-9);
}

TEST(QasmTest, ParsesCommentsAndWhitespace)
{
    const char *text = R"(# a comment
qubits 2

h q0   # trailing comment
cx q0 q1
)";
    auto parsed = parseQasm(text);
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed->size(), 2u);
    EXPECT_EQ(parsed->gates()[1].kind, GateKind::kCnot);
}

TEST(QasmTest, RejectsMalformedPrograms)
{
    // Malformed programs are kInvalidArgument Status values, never
    // crashes: the parser is a boundary layer (docs/ARCHITECTURE.md).
    for (const char *bad :
         {"h q0\n", "qubits 2\nfrob q0\n", "qubits 2\nh q5\n",
          "qubits 2\ncnot q0 q0\n", "qubits 2\nrz q0\n",
          "qubits 2\nrz(0.5,0.6) q0\n", "qubits -1\n"}) {
        StatusOr<Circuit> parsed = parseQasm(bad);
        ASSERT_FALSE(parsed.isOk()) << bad;
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
            << bad;
    }
}

TEST(QasmTest, OverflowingNumbersAreParseErrorsNotExceptions)
{
    // These used to escape as std::out_of_range from std::stoi and
    // crash the caller; they must come back as line-numbered errors.
    StatusOr<Circuit> parsed =
        parseQasm("qubits 2\nh q99999999999999999999\n");
    ASSERT_FALSE(parsed.isOk());
    EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
        << parsed.status().toString();
    parsed = parseQasm("qubits 99999999999999999999\nh q0\n");
    ASSERT_FALSE(parsed.isOk());
    EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos)
        << parsed.status().toString();
    // Trailing junk after the count must not be silently truncated.
    EXPECT_FALSE(parseQasm("qubits 5x\nh q0\n").isOk());
    // A huge-exponent parameter is a parse error, not a throw.
    EXPECT_FALSE(parseQasm("qubits 2\nrz(1e99999999) q0\n").isOk());
}

TEST(QasmTest, RejectsEmptyAndTrailingParameterPieces)
{
    // Trailing comma used to be dropped silently.
    StatusOr<Circuit> trailing = parseQasm("qubits 2\nrz(1,) q0\n");
    ASSERT_FALSE(trailing.isOk());
    EXPECT_NE(trailing.status().message().find("line 2"),
              std::string::npos)
        << trailing.status().toString();
    // Empty parameter list with parens, leading/doubled commas.
    EXPECT_FALSE(parseQasm("qubits 2\nrz() q0\n").isOk());
    EXPECT_FALSE(parseQasm("qubits 2\nh() q0\n").isOk());
    EXPECT_FALSE(parseQasm("qubits 2\nrz(,1) q0\n").isOk());
    EXPECT_FALSE(parseQasm("qubits 2\nrzz(1,,2) q0 q1\n").isOk());
    // Well-formed parameters still parse.
    EXPECT_TRUE(parseQasm("qubits 2\nrz(1.5) q0\n").isOk());
}

TEST(QasmTest, AggregateFlattensOnSerialization)
{
    Circuit c(2);
    c.add(makeAggregate({makeH(0), makeCnot(0, 1)}, "G1"));
    std::string text = toQasm(c);
    auto parsed = parseQasm(text);
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed->size(), 2u);
    EXPECT_NEAR(phaseDistance(parsed->unitary(), c.unitary()), 0.0, 1e-9);
}

} // namespace
} // namespace qaic
