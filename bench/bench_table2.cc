/**
 * @file
 * Regenerates Table 2 (the commutation relations commutativity detection
 * relies on) as machine-checked facts, and microbenchmarks the
 * commutativity checker and latency oracle with google-benchmark — the
 * two hot primitives of the compilation frontend/backend loops.
 */
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gdg/commute.h"
#include "gdg/gdg.h"
#include "oracle/oracle.h"
#include "util/table.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"

using namespace qaic;

namespace {

void
printTable2()
{
    std::printf("=== Table 2: gate commutation relations (checked by the "
                "explicit unitary test) ===\n\n");
    CommutationChecker checker;
    Table table({"relation", "expected", "checked"});
    auto row = [&](const char *name, const Gate &a, const Gate &b,
                   bool expected) {
        bool got = checker.commute(a, b);
        table.addRow({name, expected ? "commute" : "depend",
                      got == expected ? "OK" : "MISMATCH"});
    };
    row("gates on different qubits", makeH(0), makeCnot(1, 2), true);
    row("control with Z-rotation", makeRz(0, 1.1), makeCnot(0, 1), true);
    row("diagonal with diagonal", makeRzz(0, 1, 0.4), makeRzz(1, 2, 0.9),
        true);
    row("CNOTs sharing a control", makeCnot(0, 1), makeCnot(0, 2), true);
    row("CNOTs sharing a target", makeCnot(0, 2), makeCnot(1, 2), true);
    row("chained CNOTs", makeCnot(0, 1), makeCnot(1, 2), false);
    row("Rz on a CNOT target", makeRz(1, 0.4), makeCnot(0, 1), false);
    row("Rx with Rz on one qubit", makeRx(0, 0.4), makeRz(0, 0.4), false);
    std::printf("%s\n", table.render().c_str());
}

void
BM_CommutationCheckCached(benchmark::State &state)
{
    CommutationChecker checker;
    Gate a = makeCnot(0, 1), b = makeCnot(1, 2);
    checker.commute(a, b); // Warm the cache.
    for (auto _ : state)
        benchmark::DoNotOptimize(checker.commute(a, b));
}
BENCHMARK(BM_CommutationCheckCached);

void
BM_CommutationCheckMatrix(benchmark::State &state)
{
    Gate a = makeCnot(0, 1), b = makeCnot(1, 2);
    for (auto _ : state) {
        CommutationChecker checker; // Fresh cache: full matrix check.
        benchmark::DoNotOptimize(checker.commute(a, b));
    }
}
BENCHMARK(BM_CommutationCheckMatrix);

void
BM_AnalyticOracleBlock(benchmark::State &state)
{
    AnalyticOracle oracle;
    Gate block = makeAggregate(
        {makeCnot(0, 1), makeRz(1, 5.67), makeCnot(0, 1)}, "G");
    for (auto _ : state)
        benchmark::DoNotOptimize(oracle.latencyNs(block));
}
BENCHMARK(BM_AnalyticOracleBlock);

void
BM_CachedOracleBlock(benchmark::State &state)
{
    CachingOracle oracle(std::make_shared<AnalyticOracle>());
    Gate block = makeAggregate(
        {makeCnot(0, 1), makeRz(1, 5.67), makeCnot(0, 1)}, "G");
    oracle.latencyNs(block);
    for (auto _ : state)
        benchmark::DoNotOptimize(oracle.latencyNs(block));
}
BENCHMARK(BM_CachedOracleBlock);

void
BM_GdgConstruction(benchmark::State &state)
{
    Circuit c = qaoaMaxcut(lineGraph(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        CommutationChecker checker;
        Gdg gdg(c, &checker);
        benchmark::DoNotOptimize(gdg.depth());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GdgConstruction)->Arg(8)->Arg(16)->Arg(32)->Complexity();

} // namespace

int
main(int argc, char **argv)
{
    printTable2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
