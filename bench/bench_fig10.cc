/**
 * @file
 * Regenerates Figure 10: allowed instruction width vs normalized circuit
 * latency, for parallel workloads (left column of the paper's figure:
 * MAXCUT, Ising) and serial ones (right column: square root, UCCSD).
 *
 * For each width the harness also reports the per-instruction pulse
 * optimization band on the critical path — the ratio of each
 * instruction's pulse time to its gate-based-equivalent time; the paper
 * plots the least- and most-optimized instruction as the filled area.
 *
 * Expected shape: parallel circuits saturate at small widths (parallelism
 * caps useful instruction size); serial circuits keep improving as the
 * width limit grows toward the optimal-control scalability limit.
 */
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "compiler/pipeline.h"
#include "oracle/oracle.h"
#include "util/table.h"
#include "workloads/suite.h"

using namespace qaic;

int
main()
{
    std::printf("=== Figure 10: allowed instruction width vs normalized "
                "latency ===\n\n");

    const char *parallel[] = {"MAXCUT-line", "MAXCUT-reg4", "Ising-n30"};
    const char *serial[] = {"sqrt-n3", "sqrt-n4", "UCCSD-n4"};
    const int widths[] = {2, 3, 4, 6, 8, 10};

    AnalyticOracle model;
    for (const char **group : {parallel, serial}) {
        bool is_parallel = group == parallel;
        std::printf("--- %s applications ---\n",
                    is_parallel ? "parallel" : "serialized");
        for (int i = 0; i < 3; ++i) {
            BenchmarkSpec spec = benchmarkByName(group[i]);
            DeviceModel device =
                DeviceModel::gridFor(spec.circuit.numQubits());

            // One latency cache across the ISA baseline and the whole
            // width sweep: the width cap changes which aggregates form,
            // not how an instruction is priced. Routing pinned to the
            // paper's greedy router (Section 3.4.1 methodology).
            CompilerOptions base;
            base.routing.router = RouterKind::kBaseline;
            auto oracle = makeCachingOracle(
                resolveCompilerOptions(device, base));
            CompilationContext isa_context(device, base, oracle);
            double isa = Pipeline::forStrategy(Strategy::kIsa)
                             .compile(spec.circuit, isa_context)
                             .value()
                             .latencyNs;

            Pipeline agg_pipeline =
                Pipeline::forStrategy(Strategy::kClsAggregation);
            Table table({"width", "normalized latency", "best instr opt",
                         "worst instr opt"});
            for (int width : widths) {
                CompilerOptions options;
                options.maxInstructionWidth = width;
                options.routing.router = RouterKind::kBaseline;
                CompilationContext context(device, options, oracle);
                CompilationResult r =
                    agg_pipeline.compile(spec.circuit, context).value();

                // Optimization band over critical-path instructions.
                double best_ratio = 1.0, worst_ratio = 0.0;
                for (const ScheduledOp *op :
                     bench::criticalPath(r.schedule)) {
                    if (op->duration <= 0.0)
                        continue;
                    double equivalent = bench::isaEquivalentLatency(
                        op->gate, device.numQubits(), model);
                    if (equivalent <= 0.0)
                        continue;
                    double ratio = op->duration / equivalent;
                    best_ratio = std::min(best_ratio, ratio);
                    worst_ratio = std::max(worst_ratio, ratio);
                }
                table.addRow({std::to_string(width),
                              Table::fmt(r.latencyNs / isa, 3),
                              Table::fmt(best_ratio, 3),
                              Table::fmt(worst_ratio, 3)});
                std::fflush(stdout);
            }
            std::printf("%s (ISA latency %.0f ns):\n%s\n", spec.name.c_str(),
                        isa, table.render().c_str());
        }
    }
    return 0;
}
