/**
 * @file
 * Regenerates Figure 9 (the paper's main result) and Table 3: normalized
 * circuit latency of each compilation strategy across the ten NISQ
 * benchmarks, with gate-based ISA compilation as the 1.0 baseline.
 *
 * Paper's headline numbers: geometric-mean speedup 5.07x for
 * CLS+Aggregation (max ~10x), 2.34x for CLS+HandOpt. The expected shape:
 * CLS alone only helps commutative circuits (MAXCUT), aggregation
 * dominates everywhere, serial circuits (sqrt, UCCSD) gain the most from
 * aggregation relative to hand optimization.
 */
#include <cstdio>

#include "bench_common.h"
#include "compiler/batch.h"
#include "util/table.h"
#include "workloads/suite.h"

using namespace qaic;

int
main()
{
    std::printf("=== Table 3: benchmark suite ===\n\n");
    std::vector<BenchmarkSpec> suite = paperBenchmarkSuite();
    Table specs({"benchmark", "purpose", "qubits", "gates", "parallelism",
                 "locality", "commutativity"});
    for (const BenchmarkSpec &s : suite)
        specs.addRow({s.name, s.purpose,
                      std::to_string(s.circuit.numQubits()),
                      std::to_string(s.circuit.size()), s.parallelism,
                      s.spatialLocality, s.commutativity});
    std::printf("%s\n", specs.render().c_str());

    std::printf("=== Figure 9: normalized latency (ISA = 1.00; lower is "
                "better) ===\n\n");
    const Strategy strategies[] = {
        Strategy::kCls, Strategy::kClsHandOpt, Strategy::kAggregation,
        Strategy::kClsAggregation};

    // The whole suite is one batch: every (benchmark, strategy) pair is
    // an independent compilation, fanned out over a thread pool with a
    // single shared latency cache (compiler/batch.h).
    std::vector<BatchJob> jobs;
    for (const BenchmarkSpec &s : suite) {
        DeviceModel device = DeviceModel::gridFor(s.circuit.numQubits());
        jobs.push_back({s.circuit, device, Strategy::kIsa});
        for (Strategy strat : strategies)
            jobs.push_back({s.circuit, device, strat});
    }
    // Pinned to the paper's greedy router so the reproduced figure keeps
    // the paper's Section 3.4.1 routing methodology (bench_routing
    // covers the lookahead router's gains).
    CompilerOptions options;
    options.routing.router = RouterKind::kBaseline;
    std::vector<CompilationResult> results =
        unwrapBatch(compileBatch(jobs, options));

    Table fig({"benchmark", "ISA (ns)", "CLS", "CLS+HandOpt",
               "Aggregation", "CLS+Aggregation", "speedup"});
    std::vector<double> agg_speedups, hand_speedups;
    const std::size_t per_bench = 1 + std::size(strategies);
    for (std::size_t b = 0; b < suite.size(); ++b) {
        const BenchmarkSpec &s = suite[b];
        double isa = results[b * per_bench].latencyNs;
        std::vector<std::string> row = {s.name, Table::fmt(isa, 0)};
        double best = 1.0;
        for (std::size_t j = 0; j < std::size(strategies); ++j) {
            double latency = results[b * per_bench + 1 + j].latencyNs;
            double normalized = latency / isa;
            row.push_back(Table::fmt(normalized, 3));
            if (strategies[j] == Strategy::kClsAggregation) {
                agg_speedups.push_back(isa / latency);
                best = isa / latency;
            }
            if (strategies[j] == Strategy::kClsHandOpt)
                hand_speedups.push_back(isa / latency);
        }
        row.push_back(Table::fmt(best, 2) + "x");
        fig.addRow(row);
    }
    std::printf("%s\n", fig.render().c_str());

    std::printf("geomean speedup CLS+Aggregation: %.2fx  (paper: 5.07x)\n",
                bench::geometricMean(agg_speedups));
    std::printf("geomean speedup CLS+HandOpt:     %.2fx  (paper: 2.34x)\n",
                bench::geometricMean(hand_speedups));
    double max_speedup = 0.0;
    for (double s : agg_speedups)
        max_speedup = std::max(max_speedup, s);
    std::printf("max speedup CLS+Aggregation:     %.2fx  (paper: ~10x)\n",
                max_speedup);
    return 0;
}
