/**
 * @file
 * Ablations for the design choices DESIGN.md calls out:
 *
 *  (a) commutativity detection: CLS depth with and without contracting
 *      diagonal CNOT-Rz-CNOT blocks (the paper's Section 3.3.1 claim
 *      that detection is what unlocks scheduling freedom);
 *  (b) aggregation mobility window: how far the pass may look for a
 *      mergeable partner (1 = adjacent-only);
 *  (c) placement: recursive-bisection (METIS-substitute) vs identity
 *      placement, measured in inserted SWAPs;
 *  (d) oracle caching: hit rates over a full compilation.
 */
#include <cstdio>

#include "aggregate/aggregate.h"
#include "bench_common.h"
#include "compiler/pipeline.h"
#include "mapping/mapping.h"
#include "util/table.h"
#include "workloads/suite.h"

using namespace qaic;

namespace {

/** Unit-latency oracle for depth-style comparisons. */
class UnitOracle : public LatencyOracle
{
  public:
    double latencyNs(const Gate &) override { return 1.0; }
    std::string name() const override { return "unit"; }
};

void
ablationDetection()
{
    std::printf("--- (a) commutativity detection: CLS schedule depth "
                "---\n");
    Table table({"benchmark", "CLS raw", "CLS + detection", "gain"});
    for (const char *name :
         {"MAXCUT-line", "MAXCUT-reg4", "MAXCUT-cluster", "UCCSD-n4"}) {
        BenchmarkSpec spec = benchmarkByName(name);
        UnitOracle unit;
        CommutationChecker checker;
        double raw =
            scheduleCls(spec.circuit, &checker, unit).makespan();
        Circuit detected = detectDiagonalBlocks(spec.circuit, 10, nullptr);
        double with =
            scheduleCls(detected, &checker, unit).makespan();
        table.addRow({name, Table::fmt(raw, 0), Table::fmt(with, 0),
                      Table::fmt(raw / with, 2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
}

void
ablationMobility()
{
    std::printf("--- (b) aggregation mobility window (sqrt-n3, "
                "CLS+Aggregation latency) ---\n");
    BenchmarkSpec spec = benchmarkByName("sqrt-n3");
    DeviceModel device = DeviceModel::gridFor(spec.circuit.numQubits());
    // The mobility window changes which aggregates form, not how they
    // are priced, so the whole sweep shares one latency cache.
    auto oracle =
        makeCachingOracle(resolveCompilerOptions(device, {}));
    Pipeline pipeline = Pipeline::forStrategy(Strategy::kClsAggregation);
    Table table({"window", "latency (ns)", "instructions"});
    for (std::size_t window : {std::size_t(1), std::size_t(8),
                               std::size_t(50), std::size_t(200)}) {
        CompilerOptions options;
        options.aggregation.mobilityWindow = window;
        CompilationContext context(device, options, oracle);
        CompilationResult r =
            pipeline.compile(spec.circuit, context).value();
        table.addRow({std::to_string(window), Table::fmt(r.latencyNs, 0),
                      std::to_string(r.instructionCount)});
        std::fflush(stdout);
    }
    std::printf("%s\n", table.render().c_str());
}

void
ablationPlacement()
{
    std::printf("--- (c) placement heuristic: inserted SWAPs ---\n");
    Table table({"benchmark", "identity placement", "recursive bisection"});
    for (const char *name :
         {"MAXCUT-line", "MAXCUT-reg4", "MAXCUT-cluster"}) {
        BenchmarkSpec spec = benchmarkByName(name);
        DeviceModel device =
            DeviceModel::gridFor(spec.circuit.numQubits());
        std::vector<int> identity(spec.circuit.numQubits());
        for (std::size_t q = 0; q < identity.size(); ++q)
            identity[q] = static_cast<int>(q);
        // Pinned to the paper's greedy router: this ablation isolates
        // the placement heuristic, and its numbers reproduce Section
        // 3.4.1 routing (bench_routing covers the router comparison).
        RoutingOptions greedy;
        greedy.router = RouterKind::kBaseline;
        int trivial =
            routeOnDevice(spec.circuit, device, identity, greedy)
                .value()
                .swapCount;
        int placed = routeOnDevice(spec.circuit, device,
                                   initialPlacement(spec.circuit, device),
                                   greedy)
                         .value()
                         .swapCount;
        table.addRow({name, std::to_string(trivial),
                      std::to_string(placed)});
    }
    std::printf("%s\n", table.render().c_str());
}

void
ablationCaching()
{
    std::printf("--- (d) latency-oracle caching over a full compile "
                "---\n");
    Table table({"benchmark", "oracle calls", "cache hits", "hit rate"});
    for (const char *name : {"MAXCUT-reg4", "UCCSD-n4"}) {
        BenchmarkSpec spec = benchmarkByName(name);
        auto cache =
            std::make_shared<CachingOracle>(std::make_shared<AnalyticOracle>());
        CommutationChecker checker;
        Circuit detected = detectDiagonalBlocks(spec.circuit, 10, nullptr);
        AggregationOptions options;
        aggregateInstructions(detected, &checker, *cache, options);
        std::size_t calls = cache->hits() + cache->misses();
        table.addRow({name, std::to_string(calls),
                      std::to_string(cache->hits()),
                      Table::fmt(100.0 * double(cache->hits()) /
                                     double(calls),
                                 1) +
                          "%"});
        std::fflush(stdout);
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    std::printf("=== Ablations ===\n\n");
    ablationDetection();
    ablationMobility();
    ablationPlacement();
    ablationCaching();
    return 0;
}
