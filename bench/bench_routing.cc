/**
 * @file
 * Routing harness: SWAP count and routed latency for every paper
 * workload x topology x router, baseline vs lookahead.
 *
 * Emits BENCH_routing.json (one record per workload x topology holding
 * both routers' numbers) and fails — nonzero exit, for CI — if the
 * lookahead router ever inserts more SWAPs than the baseline on a grid
 * QAOA (MAXCUT) workload, the regression tripwire of the routing smoke
 * step.
 *
 * Usage: bench_routing [--quick] [--json FILE]
 *   --quick   scale the suite registers down (CI smoke budget)
 *   --json F  write the report to F instead of BENCH_routing.json
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "compiler/decompose.h"
#include "device/topology.h"
#include "mapping/mapping.h"
#include "mapping/router.h"
#include "oracle/oracle.h"
#include "schedule/schedule.h"
#include "workloads/suite.h"

using namespace qaic;

namespace {

struct RouteNumbers
{
    int swaps = 0;
    double latencyNs = 0.0;
    double wallNs = 0.0;
};

RouteNumbers
routeAndPrice(const Circuit &circuit, const DeviceModel &device,
              const std::vector<int> &placement, RouterKind router,
              AnalyticOracle &oracle)
{
    RouteNumbers out;
    RoutingResult routed;
    double start = bench::nowNs();
    if (router == RouterKind::kLookahead) {
        // The raw heuristic, bypassing routeOnDevice's never-worse
        // guard: the guard would clamp the comparison to a tautology,
        // and this bench (and the CI tripwire on its exit code) exists
        // to catch the heuristic itself regressing.
        routed = routeLookahead(circuit, device, placement,
                                RoutingOptions{});
    } else {
        RoutingOptions options;
        options.router = RouterKind::kBaseline;
        routed =
            routeOnDevice(circuit, device, placement, options).value();
    }
    out.wallNs = bench::nowNs() - start;
    out.swaps = routed.swapCount;
    out.latencyNs = scheduleAsap(routed.physical, oracle).makespan();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--json FILE]\n", argv[0]);
            return 2;
        }
    }

    const double scale = quick ? 0.3 : 1.0;
    const Topology topologies[] = {Topology::kGrid, Topology::kHeavyHex,
                                   Topology::kRing,
                                   Topology::kRandomRegular};

    bench::BenchReport report("routing");
    AnalyticOracle oracle;
    int grid_qaoa_regressions = 0;
    int strict_wins_grid_hex = 0;
    int compared_grid_hex = 0;

    std::printf("%-16s %-15s %9s %9s %12s %12s\n", "workload",
                "topology", "base swp", "look swp", "base ns",
                "look ns");
    for (const BenchmarkSpec &spec : paperBenchmarkSuite(scale)) {
        Circuit lowered = decomposeCcx(spec.circuit);
        for (Topology topology : topologies) {
            DeviceModel device =
                deviceForTopology(topology, lowered.numQubits());
            std::vector<int> placement =
                initialPlacement(lowered, device, /*seed=*/1);

            RouteNumbers base = routeAndPrice(
                lowered, device, placement, RouterKind::kBaseline, oracle);
            RouteNumbers look = routeAndPrice(
                lowered, device, placement, RouterKind::kLookahead,
                oracle);

            std::string name =
                spec.name + "/" + topologyName(topology);
            std::printf("%-16s %-15s %9d %9d %12.1f %12.1f\n",
                        spec.name.c_str(),
                        topologyName(topology).c_str(), base.swaps,
                        look.swaps, base.latencyNs, look.latencyNs);

            auto &record =
                report.add(name, look.wallNs, 1, base.wallNs);
            record.extra.emplace_back("baseline_swaps", base.swaps);
            record.extra.emplace_back("lookahead_swaps", look.swaps);
            record.extra.emplace_back("baseline_latency_ns",
                                      base.latencyNs);
            record.extra.emplace_back("lookahead_latency_ns",
                                      look.latencyNs);

            if (topology == Topology::kGrid &&
                spec.name.rfind("MAXCUT", 0) == 0 &&
                look.swaps > base.swaps) {
                std::fprintf(stderr,
                             "REGRESSION: lookahead inserted %d swaps "
                             "vs baseline %d on %s\n",
                             look.swaps, base.swaps, name.c_str());
                ++grid_qaoa_regressions;
            }
            if (topology == Topology::kGrid ||
                topology == Topology::kHeavyHex) {
                ++compared_grid_hex;
                if (look.swaps < base.swaps)
                    ++strict_wins_grid_hex;
            }
        }
    }

    std::printf("\nlookahead strictly fewer SWAPs on %d of %d "
                "grid/heavy-hex routes\n",
                strict_wins_grid_hex, compared_grid_hex);
    if (!report.writeFile(json_path))
        return 1;
    if (grid_qaoa_regressions > 0)
        return 1;
    return 0;
}
