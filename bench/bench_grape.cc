/**
 * @file
 * Regenerates the Figure 3 methodology data: GRAPE gradient-descent
 * convergence traces for representative gates, and the fidelity-vs-
 * duration frontier that the minimal-duration search explores (the
 * quantum speed limit becomes visible as the duration below which no
 * pulse converges).
 *
 * Also times every synthesis and emits BENCH_grape.json: wall clock
 * per optimize() call with the sequential (threads=1) run as the
 * pinned baseline for the pool fan-out, plus final fidelities — the
 * numbers the CI bench-smoke job archives per commit.
 *
 * Usage: bench_grape [--quick] [--json FILE]
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "control/grape.h"
#include "ir/gate.h"
#include "util/table.h"
#include "weyl/weyl.h"

using namespace qaic;
using namespace qaic::bench;

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    std::printf("=== Figure 3: GRAPE convergence and the duration "
                "frontier ===\n\n");
    BenchReport report("grape");

    DeviceModel pair = DeviceModel::line(2);
    GrapeOptimizer grape(pair);
    GrapeOptions options;
    options.maxIterations = quick ? 120 : 500;
    options.restarts = 1;

    // Convergence trace at a feasible duration, sequential vs. pool.
    GrapeOptions sequential = options;
    sequential.threads = 1;
    double seq_ns = nowNs();
    GrapeResult iswap =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, sequential);
    seq_ns = nowNs() - seq_ns;

    GrapeOptions pooled = options;
    pooled.threads = 0; // hardware concurrency
    double pool_ns = nowNs();
    GrapeResult iswap_pooled =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, pooled);
    pool_ns = nowNs() - pool_ns;

    std::printf("iSWAP @ 16 ns convergence (iteration: fidelity):\n ");
    for (std::size_t i = 0; i < iswap.trace.size();
         i += std::max<std::size_t>(1, iswap.trace.size() / 10))
        std::printf(" %zu:%.4f", i, iswap.trace[i]);
    std::printf("  final %.5f after %d iterations\n", iswap.fidelity,
                iswap.iterations);
    std::printf("  sequential %.1f ms, pool %.1f ms (fidelity drift "
                "%.2e)\n\n",
                seq_ns * 1e-6, pool_ns * 1e-6,
                std::abs(iswap.fidelity - iswap_pooled.fidelity));

    BenchReport::Record &iswap_rec =
        report.add("iswap_16ns/pool", pool_ns, 1, seq_ns);
    iswap_rec.extra.emplace_back("fidelity", iswap_pooled.fidelity);
    iswap_rec.extra.emplace_back("fidelity_drift_vs_sequential",
                                 std::abs(iswap.fidelity -
                                          iswap_pooled.fidelity));
    BenchReport::Record &seq_rec =
        report.add("iswap_16ns/sequential", seq_ns, 1);
    seq_rec.extra.emplace_back("fidelity", iswap.fidelity);
    seq_rec.extra.emplace_back("iterations",
                               static_cast<double>(iswap.iterations));

    // Fidelity-vs-duration frontier for the CNOT (Weyl bound: 12.5 ns).
    const std::vector<double> durations =
        quick ? std::vector<double>{9.0, 15.0}
              : std::vector<double>{6.0, 9.0, 12.0, 13.0, 14.0, 15.0,
                                    18.0, 24.0};
    Table frontier({"duration (ns)", "best fidelity", "converged"});
    double frontier_ns = nowNs();
    for (double t : durations) {
        GrapeOptions probe = options;
        probe.restarts = 2;
        double probe_ns = nowNs();
        GrapeResult r = grape.optimize(makeCnot(0, 1).matrix(), t, probe);
        probe_ns = nowNs() - probe_ns;
        frontier.addRow({Table::fmt(t, 1), Table::fmt(r.fidelity, 5),
                         r.converged ? "yes" : "no"});
        char name[48];
        std::snprintf(name, sizeof(name), "cnot_frontier/%.0fns", t);
        BenchReport::Record &rec = report.add(name, probe_ns, 1);
        rec.extra.emplace_back("fidelity", r.fidelity);
        rec.extra.emplace_back("converged", r.converged ? 1.0 : 0.0);
        std::fflush(stdout);
    }
    frontier_ns = nowNs() - frontier_ns;

    WeylCoordinates cnot = weylCoordinates(makeCnot(0, 1).matrix());
    std::printf("CNOT duration frontier (XY interaction bound %.1f ns):\n%s\n",
                xyMinimumTime(cnot, pair.mu2()),
                frontier.render().c_str());
    std::printf("frontier total: %.1f ms\n\n", frontier_ns * 1e-6);
    report.add("cnot_frontier/total", frontier_ns, 1);

    return report.writeFile(json_path) ? 0 : 1;
}
