/**
 * @file
 * Regenerates the Figure 3 methodology data: GRAPE gradient-descent
 * convergence traces for representative gates, and the fidelity-vs-
 * duration frontier that the minimal-duration search explores (the
 * quantum speed limit becomes visible as the duration below which no
 * pulse converges).
 *
 * Also times every synthesis and emits BENCH_grape.json: wall clock
 * per optimize() call with the sequential (threads=1) run as the
 * pinned baseline for the pool fan-out, plus final fidelities — the
 * numbers the CI bench-smoke job archives per commit.
 *
 * The pulse-library section exercises the persistent store
 * (oracle/pulselib.h): a representative gate set is priced through a
 * library-backed GrapeLatencyOracle, then re-priced warm. The replay
 * record's baseline is the cold synthesis wall clock *stored in the
 * library*, so a second bench_grape run against the same --pulse-lib
 * file reports the true cross-process speedup (and its hit count — the
 * number CI asserts is nonzero on the second run).
 *
 * Usage: bench_grape [--quick] [--json FILE] [--pulse-lib FILE]
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "control/grape.h"
#include "ir/gate.h"
#include "oracle/oracle.h"
#include "oracle/pulselib.h"
#include "util/table.h"
#include "weyl/weyl.h"

using namespace qaic;
using namespace qaic::bench;

namespace {

/** The fig4-flavoured gate set priced through the pulse library. */
std::vector<Gate>
pulseLibraryGateSet()
{
    return {
        makeIswap(0, 1),
        makeCnot(0, 1),
        makeAggregate({makeCnot(0, 1), makeRz(1, 5.67), makeCnot(0, 1)},
                      "G3"),
        makeAggregate({makeCnot(0, 1), makeRz(1, 2.30), makeCnot(0, 1)},
                      "G3b"),
    };
}

/** Same structural shape as the stored G3 blocks, a third angle — an
 *  exact-fingerprint miss that must warm-start from a loaded entry. */
Gate
warmStartProbeGate()
{
    return makeAggregate({makeCnot(0, 1), makeRz(1, 1.23), makeCnot(0, 1)},
                         "G3c");
}

double
priceGateSet(GrapeLatencyOracle &oracle, std::vector<double> *latencies)
{
    latencies->clear();
    double t0 = nowNs();
    for (const Gate &g : pulseLibraryGateSet())
        latencies->push_back(oracle.latencyNs(g));
    return nowNs() - t0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path, pulse_lib_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--pulse-lib") == 0 && i + 1 < argc)
            pulse_lib_path = argv[++i];
    }

    std::printf("=== Figure 3: GRAPE convergence and the duration "
                "frontier ===\n\n");
    BenchReport report("grape");

    DeviceModel pair = DeviceModel::line(2);
    GrapeOptimizer grape(pair);
    GrapeOptions options;
    options.maxIterations = quick ? 120 : 500;
    options.restarts = 1;

    // Convergence trace at a feasible duration, sequential vs. pool.
    GrapeOptions sequential = options;
    sequential.threads = 1;
    double seq_ns = nowNs();
    GrapeResult iswap =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, sequential);
    seq_ns = nowNs() - seq_ns;

    GrapeOptions pooled = options;
    pooled.threads = 0; // hardware concurrency
    double pool_ns = nowNs();
    GrapeResult iswap_pooled =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, pooled);
    pool_ns = nowNs() - pool_ns;

    std::printf("iSWAP @ 16 ns convergence (iteration: fidelity):\n ");
    for (std::size_t i = 0; i < iswap.trace.size();
         i += std::max<std::size_t>(1, iswap.trace.size() / 10))
        std::printf(" %zu:%.4f", i, iswap.trace[i]);
    std::printf("  final %.5f after %d iterations\n", iswap.fidelity,
                iswap.iterations);
    std::printf("  sequential %.1f ms, pool %.1f ms (fidelity drift "
                "%.2e)\n\n",
                seq_ns * 1e-6, pool_ns * 1e-6,
                std::abs(iswap.fidelity - iswap_pooled.fidelity));

    BenchReport::Record &iswap_rec =
        report.add("iswap_16ns/pool", pool_ns, 1, seq_ns);
    iswap_rec.extra.emplace_back("fidelity", iswap_pooled.fidelity);
    iswap_rec.extra.emplace_back("fidelity_drift_vs_sequential",
                                 std::abs(iswap.fidelity -
                                          iswap_pooled.fidelity));
    BenchReport::Record &seq_rec =
        report.add("iswap_16ns/sequential", seq_ns, 1);
    seq_rec.extra.emplace_back("fidelity", iswap.fidelity);
    seq_rec.extra.emplace_back("iterations",
                               static_cast<double>(iswap.iterations));

    // Fidelity-vs-duration frontier for the CNOT (Weyl bound: 12.5 ns).
    const std::vector<double> durations =
        quick ? std::vector<double>{9.0, 15.0}
              : std::vector<double>{6.0, 9.0, 12.0, 13.0, 14.0, 15.0,
                                    18.0, 24.0};
    Table frontier({"duration (ns)", "best fidelity", "converged"});
    double frontier_ns = nowNs();
    for (double t : durations) {
        GrapeOptions probe = options;
        probe.restarts = 2;
        double probe_ns = nowNs();
        GrapeResult r = grape.optimize(makeCnot(0, 1).matrix(), t, probe);
        probe_ns = nowNs() - probe_ns;
        frontier.addRow({Table::fmt(t, 1), Table::fmt(r.fidelity, 5),
                         r.converged ? "yes" : "no"});
        char name[48];
        std::snprintf(name, sizeof(name), "cnot_frontier/%.0fns", t);
        BenchReport::Record &rec = report.add(name, probe_ns, 1);
        rec.extra.emplace_back("fidelity", r.fidelity);
        rec.extra.emplace_back("converged", r.converged ? 1.0 : 0.0);
        std::fflush(stdout);
    }
    frontier_ns = nowNs() - frontier_ns;

    WeylCoordinates cnot = weylCoordinates(makeCnot(0, 1).matrix());
    std::printf("CNOT duration frontier (XY interaction bound %.1f ns):\n%s\n",
                xyMinimumTime(cnot, pair.mu2()),
                frontier.render().c_str());
    std::printf("frontier total: %.1f ms\n\n", frontier_ns * 1e-6);
    report.add("cnot_frontier/total", frontier_ns, 1);

    // --- Persistent pulse library: cold vs. warm ---------------------
    //
    // First pass prices the gate set through a library-backed oracle
    // (full GRAPE when the library is empty, durable hits when
    // --pulse-lib points at an already-warmed file) and flushes. A
    // second library then loads the flushed file — as a fresh process
    // would — and (a) replays the gate set (exact hits, bitwise
    // latencies) and (b) prices a same-shape gate at a new angle,
    // which must warm-start from the loaded waveforms. The replay
    // baseline is the cold synthesis wall clock *stored in the
    // entries*, so the reported speedup is meaningful even when this
    // process never paid the cold cost itself.
    std::printf("=== Persistent pulse library: cold vs. warm ===\n\n");
    const std::string lib_path = pulse_lib_path.empty()
                                     ? "BENCH_pulselib.scratch.qplb"
                                     : pulse_lib_path;
    int exit_code = 0;
    {
        GrapeOracleOptions oracle_options;
        oracle_options.grape.maxIterations = quick ? 120 : 400;

        auto library = std::make_shared<PulseLibrary>(lib_path);
        (void)library->load();
        GrapeLatencyOracle oracle(oracle_options, {}, library);
        std::vector<double> first_lats;
        double first_ns = priceGateSet(oracle, &first_lats);
        PulseLibrary::Stats after_first = library->stats();
        if (!library->flush().isOk())
            return 1;

        // The "next process": same file, fresh library and oracle.
        auto reloaded = std::make_shared<PulseLibrary>(lib_path);
        if (!reloaded->load().isOk())
            return 1;
        GrapeLatencyOracle warm_oracle(oracle_options, {}, reloaded);
        std::vector<double> replay_lats;
        double replay_ns = priceGateSet(warm_oracle, &replay_lats);
        PulseLibrary::Stats after_replay = reloaded->stats();

        double probe_ns = nowNs();
        warm_oracle.latencyNs(warmStartProbeGate());
        probe_ns = nowNs() - probe_ns;
        std::size_t warm_starts = reloaded->stats().warmStarts;

        double cold_ns = 0.0; // synthesis wall clock stored durably
        const std::string tag = grapeOriginTag(oracle_options, {});
        for (const Gate &g : pulseLibraryGateSet())
            if (auto e = reloaded->peek(unitaryFingerprint(g.matrix()),
                                        tag))
                cold_ns += e->synthesisWallNs;
        const bool identical = first_lats == replay_lats;
        const long long ops =
            static_cast<long long>(first_lats.size());
        const double per_op = static_cast<double>(ops);

        BenchReport::Record &first_rec =
            report.add("pulselib/first_pass", first_ns / per_op, ops,
                       cold_ns / per_op);
        first_rec.extra.emplace_back(
            "library_hits", static_cast<double>(after_first.hits));
        first_rec.extra.emplace_back(
            "entries", static_cast<double>(after_first.entries));

        BenchReport::Record &replay_rec =
            report.add("pulselib/replay", replay_ns / per_op, ops,
                       cold_ns / per_op);
        replay_rec.extra.emplace_back(
            "library_hits", static_cast<double>(after_replay.hits));
        replay_rec.extra.emplace_back("latency_identical",
                                      identical ? 1.0 : 0.0);

        BenchReport::Record &probe_rec =
            report.add("pulselib/warm_start_probe", probe_ns, 1);
        probe_rec.extra.emplace_back("warm_starts",
                                     static_cast<double>(warm_starts));

        std::printf("library first-pass hits: %zu\n", after_first.hits);
        std::printf("first pass %.1f ms, replay %.1f ms, stored cold "
                    "synthesis %.1f ms (%.0fx), latencies %s\n",
                    first_ns * 1e-6, replay_ns * 1e-6, cold_ns * 1e-6,
                    replay_ns > 0.0 ? cold_ns / replay_ns : 0.0,
                    identical ? "bitwise-identical" : "DIFFER");
        std::printf("warm-start probe (new angle, same shape): %.1f ms, "
                    "%zu warm starts\n",
                    probe_ns * 1e-6, warm_starts);
        if (!identical) {
            std::fprintf(stderr,
                         "replay latencies differ from first pass\n");
            exit_code = 1;
        }
        if (!pulse_lib_path.empty()) {
            if (!reloaded->flush().isOk())
                return 1;
            std::printf("pulse library flushed: %s (%zu entries)\n",
                        pulse_lib_path.c_str(), reloaded->size());
        }
    }
    if (pulse_lib_path.empty())
        std::remove(lib_path.c_str());
    std::printf("\n");

    if (!report.writeFile(json_path) || exit_code != 0)
        return 1;
    return 0;
}
