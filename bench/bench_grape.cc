/**
 * @file
 * Regenerates the Figure 3 methodology data: GRAPE gradient-descent
 * convergence traces for representative gates, and the fidelity-vs-
 * duration frontier that the minimal-duration search explores (the
 * quantum speed limit becomes visible as the duration below which no
 * pulse converges).
 */
#include <cstdio>

#include "control/grape.h"
#include "ir/gate.h"
#include "util/table.h"
#include "weyl/weyl.h"

using namespace qaic;

int
main()
{
    std::printf("=== Figure 3: GRAPE convergence and the duration "
                "frontier ===\n\n");

    DeviceModel pair = DeviceModel::line(2);
    GrapeOptimizer grape(pair);
    GrapeOptions options;
    options.maxIterations = 500;
    options.restarts = 1;

    // Convergence trace at a feasible duration.
    GrapeResult iswap =
        grape.optimize(makeIswap(0, 1).matrix(), 16.0, options);
    std::printf("iSWAP @ 16 ns convergence (iteration: fidelity):\n ");
    for (std::size_t i = 0; i < iswap.trace.size();
         i += std::max<std::size_t>(1, iswap.trace.size() / 10))
        std::printf(" %zu:%.4f", i, iswap.trace[i]);
    std::printf("  final %.5f after %d iterations\n\n", iswap.fidelity,
                iswap.iterations);

    // Fidelity-vs-duration frontier for the CNOT (Weyl bound: 12.5 ns).
    Table frontier({"duration (ns)", "best fidelity", "converged"});
    for (double t : {6.0, 9.0, 12.0, 13.0, 14.0, 15.0, 18.0, 24.0}) {
        GrapeOptions probe = options;
        probe.restarts = 2;
        GrapeResult r = grape.optimize(makeCnot(0, 1).matrix(), t, probe);
        frontier.addRow({Table::fmt(t, 1), Table::fmt(r.fidelity, 5),
                         r.converged ? "yes" : "no"});
        std::fflush(stdout);
    }
    WeylCoordinates cnot = weylCoordinates(makeCnot(0, 1).matrix());
    std::printf("CNOT duration frontier (XY interaction bound %.1f ns):\n%s\n",
                xyMinimumTime(cnot, pair.mu2()),
                frontier.render().c_str());
    return 0;
}
