/**
 * @file
 * Microbenchmarks for the la/kernels fast-path layer, with the naive
 * cmatrix.h implementations measured in the same binary as the pinned
 * baselines. Emits BENCH_kernels.json (ns/op, speedup vs. baseline,
 * CachingOracle hit rates) — the machine-readable perf trajectory that
 * the CI bench-smoke job archives per commit.
 *
 * Usage: bench_kernels [--quick] [--json FILE]
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "ir/gate.h"
#include "la/eig.h"
#include "la/expm.h"
#include "la/kernels.h"
#include "oracle/oracle.h"
#include "util/rng.h"

using namespace qaic;
using namespace qaic::bench;

namespace {

CMatrix
randomComplex(std::size_t n, Rng &rng)
{
    CMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = Cmplx(rng.gaussian(), rng.gaussian());
    return m;
}

CMatrix
randomHermitian(std::size_t n, Rng &rng)
{
    CMatrix a = randomComplex(n, rng);
    return (a + a.dagger()) * Cmplx(0.5, 0.0);
}

/** The pre-kernel-layer spectral exponential, kept as the baseline. */
CMatrix
naiveExpiFromEig(const EigResult &eig, double t)
{
    const std::size_t n = eig.vectors.rows();
    CMatrix phases(n, n);
    for (std::size_t i = 0; i < n; ++i)
        phases(i, i) = std::exp(Cmplx(0.0, -t * eig.values[i]));
    return eig.vectors * phases * eig.vectors.dagger();
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }
    const long long reps = quick ? 2000 : 20000;

    std::printf("=== Kernel microbenchmarks (%s, %lld reps/size) ===\n\n",
                quick ? "quick" : "full", reps);
    BenchReport report("kernels");
    Rng rng(42);
    Workspace ws;

    for (std::size_t n : {4ul, 8ul, 16ul}) {
        CMatrix a = randomComplex(n, rng);
        CMatrix b = randomComplex(n, rng);
        CMatrix h = randomHermitian(n, rng);
        EigResult eig = hermitianEig(h);
        CMatrix dest;
        char name[64];

        // GEMM: temporary-spawning operator* vs. multiplyInto.
        double base = measureNs(reps, [&] { CMatrix c = a * b; });
        double fast = measureNs(reps, [&] { multiplyInto(dest, a, b); });
        std::snprintf(name, sizeof(name), "gemm/n=%zu", n);
        report.add(name, fast, reps, base);

        // A * B^dag: materialized dagger vs. the fused kernel.
        base = measureNs(reps, [&] { CMatrix c = a * b.dagger(); });
        fast = measureNs(reps, [&] { multiplyDaggerInto(dest, a, b); });
        std::snprintf(name, sizeof(name), "gemm_dagger/n=%zu", n);
        report.add(name, fast, reps, base);

        // A^dag * B.
        base = measureNs(reps, [&] { CMatrix c = a.dagger() * b; });
        fast = measureNs(reps, [&] { multiplyAdjointInto(dest, a, b); });
        std::snprintf(name, sizeof(name), "gemm_adjoint/n=%zu", n);
        report.add(name, fast, reps, base);

        // Scaled accumulate (the step-Hamiltonian build).
        CMatrix acc(n, n);
        base = measureNs(reps, [&] { acc += b * Cmplx(0.5, 0.0); });
        fast = measureNs(
            reps, [&] { addScaledInPlace(acc, b, Cmplx(0.5, 0.0)); });
        std::snprintf(name, sizeof(name), "axpy/n=%zu", n);
        report.add(name, fast, reps, base);

        // Spectral exponential.
        base = measureNs(reps,
                         [&] { CMatrix u = naiveExpiFromEig(eig, 0.5); });
        fast = measureNs(reps,
                         [&] { expiFromEigInto(dest, eig, 0.5, ws); });
        std::snprintf(name, sizeof(name), "expi_from_eig/n=%zu", n);
        report.add(name, fast, reps, base);

        // Hermitian eigendecomposition: fresh-allocation API vs. the
        // workspace variant reusing one EigResult.
        long long eig_reps = reps / 10;
        EigResult scratch_eig;
        base = measureNs(eig_reps, [&] { EigResult e = hermitianEig(h); });
        fast = measureNs(eig_reps,
                         [&] { hermitianEig(h, scratch_eig, ws); });
        std::snprintf(name, sizeof(name), "hermitian_eig/n=%zu", n);
        report.add(name, fast, eig_reps, base);

        // GRAPE gradient kernel: value API vs. allocation-free variant.
        base = measureNs(eig_reps, [&] {
            CMatrix d = expiDirectionalDerivative(eig, h, 0.5);
        });
        fast = measureNs(eig_reps, [&] {
            expiDirectionalDerivativeInto(dest, eig, h, 0.5, ws);
        });
        std::snprintf(name, sizeof(name), "directional_deriv/n=%zu", n);
        report.add(name, fast, eig_reps, base);

        // Pade exponential (no naive twin — tracked absolute).
        CMatrix gen = h * Cmplx(0.0, -0.5);
        fast = measureNs(eig_reps, [&] { CMatrix e = expmPade(gen); });
        std::snprintf(name, sizeof(name), "expm_pade/n=%zu", n);
        report.add(name, fast, eig_reps);
    }

    // CachingOracle: miss-path pricing vs. cached lookups, plus the
    // observed hit rate from the new stats() counters.
    {
        CachingOracle oracle(std::make_shared<AnalyticOracle>());
        const Gate gates[] = {makeH(0),           makeT(1),
                              makeRx(0, 0.7),     makeRz(1, 1.3),
                              makeCnot(0, 1),     makeCz(0, 1),
                              makeRzz(0, 1, 0.9), makeSwap(0, 1)};
        double miss_start = nowNs();
        for (const Gate &g : gates)
            oracle.latencyNs(g);
        double miss_ns = (nowNs() - miss_start) / 8.0;

        const long long lookup_reps = quick ? 200 : 2000;
        double hit_ns = measureNs(lookup_reps, [&] {
            for (const Gate &g : gates)
                oracle.latencyNs(g);
        }) / 8.0;

        CachingOracle::Stats stats = oracle.stats();
        BenchReport::Record &r =
            report.add("oracle_cached_lookup", hit_ns,
                       lookup_reps * 8, miss_ns);
        r.extra.emplace_back("hit_rate", stats.hitRate());
        r.extra.emplace_back("entries",
                             static_cast<double>(stats.entries));
        r.extra.emplace_back("peak_inflight",
                             static_cast<double>(stats.peakInflight));
    }

    for (const BenchReport::Record &r : report.records()) {
        if (r.baselineNsPerOp > 0.0)
            std::printf("  %-24s %10.1f ns/op  (baseline %10.1f, "
                        "speedup %5.2fx)\n",
                        r.name.c_str(), r.nsPerOp, r.baselineNsPerOp,
                        r.baselineNsPerOp / r.nsPerOp);
        else
            std::printf("  %-24s %10.1f ns/op\n", r.name.c_str(),
                        r.nsPerOp);
    }
    std::printf("\n");
    return report.writeFile(json_path) ? 0 : 1;
}
