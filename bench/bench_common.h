/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the paper's
 * tables and figures.
 */
#ifndef QAIC_BENCH_BENCH_COMMON_H
#define QAIC_BENCH_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <vector>

#include "compiler/compiler.h"
#include "compiler/decompose.h"
#include "schedule/schedule.h"

namespace qaic::bench {

/** Geometric mean of positive values. */
inline double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/**
 * Ops on the schedule's critical path: walks back from the op that
 * finishes at the makespan through ops whose finish abuts the next op's
 * start on a shared qubit.
 */
inline std::vector<const ScheduledOp *>
criticalPath(const Schedule &schedule)
{
    std::vector<const ScheduledOp *> path;
    if (schedule.ops.empty())
        return path;
    double makespan = schedule.makespan();
    const ScheduledOp *current = nullptr;
    for (const ScheduledOp &op : schedule.ops)
        if (std::abs(op.finish() - makespan) < 1e-6)
            current = &op;
    while (current) {
        path.push_back(current);
        const ScheduledOp *prev = nullptr;
        for (const ScheduledOp &op : schedule.ops) {
            if (&op == current)
                continue;
            if (std::abs(op.finish() - current->start) > 1e-6)
                continue;
            for (int q : current->gate.qubits)
                if (op.gate.actsOn(q)) {
                    prev = &op;
                    break;
                }
            if (prev)
                break;
        }
        current = prev;
    }
    return path;
}

/**
 * Gate-based-equivalent latency of one instruction: its members lowered
 * to physical gates and ASAP-scheduled. The ratio duration/equivalent is
 * the per-instruction pulse optimization factor of Figure 10.
 */
inline double
isaEquivalentLatency(const Gate &gate, int num_qubits,
                     LatencyOracle &oracle)
{
    Circuit single(num_qubits);
    single.add(gate);
    Circuit phys = decomposeToPhysical(single);
    return scheduleAsap(phys, oracle).makespan();
}

} // namespace qaic::bench

#endif // QAIC_BENCH_BENCH_COMMON_H
