/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the paper's
 * tables and figures.
 */
#ifndef QAIC_BENCH_BENCH_COMMON_H
#define QAIC_BENCH_BENCH_COMMON_H

#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "compiler/compiler.h"
#include "compiler/decompose.h"
#include "schedule/schedule.h"

namespace qaic::bench {

/** Monotonic wall clock in nanoseconds. */
inline double
nowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Runs @p fn @p iters times and returns the mean wall-clock ns per
 * call. A single warm-up call primes caches (and Workspace arenas)
 * before timing starts.
 */
template <typename Fn>
double
measureNs(long long iters, Fn &&fn)
{
    fn();
    double start = nowNs();
    for (long long i = 0; i < iters; ++i)
        fn();
    return (nowNs() - start) / static_cast<double>(iters);
}

/**
 * Machine-readable benchmark report, emitted as BENCH_<suite>.json.
 *
 * Each record carries ns/op, the op count it was averaged over, an
 * optional pinned baseline (ns/op of the naive reference measured in
 * the same binary, from which a speedup is derived) and free-form
 * numeric extras (fidelities, cache hit rates, ...). The format is the
 * perf trajectory the CI bench-smoke job uploads per commit.
 */
class BenchReport
{
  public:
    struct Record
    {
        std::string name;
        double nsPerOp = 0.0;
        long long ops = 0;
        /** ns/op of the pinned baseline; <= 0 means "no baseline". */
        double baselineNsPerOp = 0.0;
        std::vector<std::pair<std::string, double>> extra;
    };

    explicit BenchReport(std::string suite) : suite_(std::move(suite)) {}

    /**
     * Appends a record and returns a reference to it. Records live in a
     * deque, so the reference stays valid across later add() calls.
     */
    Record &
    add(const std::string &name, double ns_per_op, long long ops,
        double baseline_ns_per_op = 0.0)
    {
        records_.push_back({name, ns_per_op, ops, baseline_ns_per_op, {}});
        return records_.back();
    }

    std::string
    toJson() const
    {
        std::string out = "{\n  \"suite\": \"" + suite_ +
                          "\",\n  \"records\": [";
        char buf[64];
        for (std::size_t i = 0; i < records_.size(); ++i) {
            const Record &r = records_[i];
            out += i ? ",\n    {" : "\n    {";
            out += "\"name\": \"" + r.name + "\"";
            std::snprintf(buf, sizeof(buf), ", \"ns_per_op\": %.1f",
                          r.nsPerOp);
            out += buf;
            std::snprintf(buf, sizeof(buf), ", \"ops\": %lld", r.ops);
            out += buf;
            if (r.baselineNsPerOp > 0.0) {
                std::snprintf(buf, sizeof(buf),
                              ", \"baseline_ns_per_op\": %.1f",
                              r.baselineNsPerOp);
                out += buf;
                std::snprintf(buf, sizeof(buf), ", \"speedup\": %.2f",
                              r.baselineNsPerOp / r.nsPerOp);
                out += buf;
            }
            for (const auto &[key, value] : r.extra) {
                std::snprintf(buf, sizeof(buf), ", \"%s\": %.6g",
                              key.c_str(), value);
                out += buf;
            }
            out += "}";
        }
        out += "\n  ]\n}\n";
        return out;
    }

    /** Writes BENCH_<suite>.json (or @p path) and reports the path. */
    bool
    writeFile(const std::string &path = "") const
    {
        std::string file =
            path.empty() ? "BENCH_" + suite_ + ".json" : path;
        std::FILE *f = std::fopen(file.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", file.c_str());
            return false;
        }
        std::string json = toJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s (%zu records)\n", file.c_str(),
                    records_.size());
        return true;
    }

    const std::deque<Record> &records() const { return records_; }

  private:
    std::string suite_;
    std::deque<Record> records_;
};

/** Geometric mean of positive values. */
inline double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/**
 * Ops on the schedule's critical path: walks back from the op that
 * finishes at the makespan through ops whose finish abuts the next op's
 * start on a shared qubit.
 */
inline std::vector<const ScheduledOp *>
criticalPath(const Schedule &schedule)
{
    std::vector<const ScheduledOp *> path;
    if (schedule.ops.empty())
        return path;
    double makespan = schedule.makespan();
    const ScheduledOp *current = nullptr;
    for (const ScheduledOp &op : schedule.ops)
        if (std::abs(op.finish() - makespan) < 1e-6)
            current = &op;
    while (current) {
        path.push_back(current);
        const ScheduledOp *prev = nullptr;
        for (const ScheduledOp &op : schedule.ops) {
            if (&op == current)
                continue;
            if (std::abs(op.finish() - current->start) > 1e-6)
                continue;
            for (int q : current->gate.qubits)
                if (op.gate.actsOn(q)) {
                    prev = &op;
                    break;
                }
            if (prev)
                break;
        }
        current = prev;
    }
    return path;
}

/**
 * Gate-based-equivalent latency of one instruction: its members lowered
 * to physical gates and ASAP-scheduled. The ratio duration/equivalent is
 * the per-instruction pulse optimization factor of Figure 10.
 */
inline double
isaEquivalentLatency(const Gate &gate, int num_qubits,
                     LatencyOracle &oracle)
{
    Circuit single(num_qubits);
    single.add(gate);
    Circuit phys = decomposeToPhysical(single);
    return scheduleAsap(phys, oracle).makespan();
}

} // namespace qaic::bench

#endif // QAIC_BENCH_BENCH_COMMON_H
