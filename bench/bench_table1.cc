/**
 * @file
 * Regenerates Table 1: optimized pulse times for the individual gates of
 * the QAOA-triangle example and for its aggregated instructions G1..Gn.
 *
 * Two columns are reported for the narrow instructions: the analytic
 * speed-limit model the compiler uses at scale, and the true minimal
 * duration found by the in-repo GRAPE unit (the paper's optimal control
 * unit [32]). Paper values are printed for reference; absolute numbers
 * differ from the authors' pulse stack, the ordering and aggregation
 * gains are the reproduced shape.
 */
#include <cstdio>

#include "bench_common.h"
#include "compiler/pipeline.h"
#include "control/grape.h"
#include "oracle/oracle.h"
#include "util/table.h"
#include "workloads/qaoa.h"

using namespace qaic;

namespace {

double
grapeMinimalDuration(const Gate &gate, double model_estimate)
{
    GrapeOracleOptions options;
    options.grape.maxIterations = 500;
    options.grape.restarts = 2;
    options.resolution = 0.5;
    options.maxWidth = 3;
    (void)model_estimate;
    GrapeLatencyOracle oracle(options);
    return oracle.latencyNs(gate);
}

} // namespace

int
main()
{
    std::printf("=== Table 1: instruction execution times for the QAOA "
                "triangle circuit ===\n\n");

    AnalyticOracle model;

    // Upper half: the standard-gate-set times.
    struct Row
    {
        const char *name;
        Gate gate;
        double paper;
    };
    std::vector<Row> gates = {
        {"CNOT", makeCnot(0, 1), 47.1},
        {"SWAP", makeSwap(0, 1), 50.1},
        {"H", makeH(0), 13.7},
        {"Rz(5.67)", makeRz(0, 5.67), 9.8},
        {"Rx(1.26)", makeRx(0, 1.26), 6.1},
    };

    Table upper({"gate", "model (ns)", "GRAPE (ns)", "paper (ns)"});
    for (const Row &row : gates) {
        double m = model.latencyNs(row.gate);
        // For the ISA baseline a CNOT is *decomposed* (two iSWAPs plus
        // single-qubit layers), matching how the paper's gate-based
        // compilation realizes it.
        if (row.gate.kind == GateKind::kCnot)
            m = bench::isaEquivalentLatency(row.gate, 2, model);
        double g = grapeMinimalDuration(row.gate, m);
        upper.addRow({row.name, Table::fmt(m, 1), Table::fmt(g, 1),
                      Table::fmt(row.paper, 1)});
    }
    std::printf("%s\n", upper.render().c_str());

    // Lower half: the aggregated instructions our compiler produces for
    // the triangle circuit on a 3-qubit line.
    DeviceModel line3 = DeviceModel::line(3);
    CompilationContext context(line3, {});
    CompilationResult agg =
        Pipeline::forStrategy(Strategy::kClsAggregation)
            .compile(qaoaTriangleExample(), context)
            .value();

    Table lower(
        {"instruction", "width", "model (ns)", "GRAPE (ns)", "members"});
    for (const Gate &g : agg.physicalCircuit.gates()) {
        if (g.kind != GateKind::kAggregate)
            continue;
        double m = model.latencyNs(g);
        double gr = g.width() <= 3 ? grapeMinimalDuration(g, m) : -1.0;
        lower.addRow({g.payload->label, std::to_string(g.width()),
                      Table::fmt(m, 1),
                      gr >= 0 ? Table::fmt(gr, 1) : "-",
                      std::to_string(g.payload->members.size())});
    }
    std::printf("%s", lower.render().c_str());
    std::printf("\n(paper's aggregates: G1 54.9, G2 13.7, G3 42.0, "
                "G4 31.4, G5 6.1 ns)\n");
    return 0;
}
