/**
 * @file
 * Verification-engine benchmarks: dense bit-kernel throughput against
 * the pinned seed applyMatrix path (measured in the same binary), the
 * n >= 26 dense random-state check the seed engine could not reach,
 * and the symbolic checkers (stabilizer tableau, diagonal propagator,
 * rotation-form routed equivalence) at full suite scale n = 60.
 *
 * Emits BENCH_sim.json and fails — nonzero exit, for the CI sim-smoke
 * step — if the bit-kernel dense path regresses below 8x the seed
 * gather/scatter path on the headline register (the committed numbers
 * run well above 10x).
 *
 * Usage: bench_sim [--quick] [--json FILE]
 *   --quick   smaller registers, skip the n=26 check (CI smoke budget)
 *   --json F  write the report to F instead of BENCH_sim.json
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "device/topology.h"
#include "mapping/mapping.h"
#include "sim/statevector.h"
#include "testing/equivalence.h"
#include "testing/generators.h"
#include "verify/verify.h"
#include "workloads/ising.h"

using namespace qaic;
using namespace qaic::bench;

namespace {

constexpr double kSpeedupFloor = 8.0;

/** One whole-circuit pass through the seed gather/scatter path. */
void
applySeedPath(StateVector *sv, const Circuit &c)
{
    for (const Gate &g : c.gates())
        sv->applyMatrixGeneric(g.matrix(), g.qubits);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--json FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("=== Verification engine benchmarks (%s) ===\n\n",
                quick ? "quick" : "full");
    BenchReport report("sim");
    int regressions = 0;

    // --- Dense kernels vs. the seed applyMatrix path -------------------
    const std::vector<int> sizes = quick ? std::vector<int>{12, 16}
                                         : std::vector<int>{16, 20};
    for (int n : sizes) {
        const int gates = 64;
        Circuit c = testing::randomCircuit(n, gates, 42 + n);
        StateVector fast = StateVector::random(n, 1);
        StateVector slow = fast;
        const long long iters = quick ? 2 : 4;
        double base_ns =
            measureNs(iters, [&] { applySeedPath(&slow, c); });
        double fast_ns = measureNs(iters, [&] { fast.apply(c); });
        char name[64];
        std::snprintf(name, sizeof(name), "dense_apply/n=%d", n);
        auto &r = report.add(name, fast_ns / gates, iters * gates,
                             base_ns / gates);
        r.extra.emplace_back("gates", gates);
        const double speedup = base_ns / fast_ns;
        std::printf("  %-28s %10.0f ns/gate (seed %10.0f, %.1fx)\n",
                    name, fast_ns / gates, base_ns / gates, speedup);
        if (n == sizes.back() && speedup < kSpeedupFloor) {
            std::fprintf(stderr,
                         "REGRESSION: bit-kernel speedup %.2fx below "
                         "the %.1fx floor on n=%d\n",
                         speedup, kSpeedupFloor, n);
            ++regressions;
        }
    }

    // --- Dense random-state check at n = 26 ----------------------------
    if (!quick) {
        const int n = 26;
        Circuit c = testing::randomCircuit(n, 24, 77);
        Circuit reordered = testing::commuteAdjacentPairs(c, 78);
        EquivalenceOptions options;
        options.force = EquivalenceMethod::kDenseSampling;
        options.samples = 1;
        double start = nowNs();
        EquivalenceReport check =
            analyzeCircuitsEquivalent(c, reordered, options);
        double wall = nowNs() - start;
        auto &r = report.add("dense_check/n=26", wall, 1);
        r.extra.emplace_back("equivalent",
                             check.equivalent() ? 1.0 : 0.0);
        std::printf("  %-28s %10.2f s (equivalent=%d)\n",
                    "dense_check/n=26", wall * 1e-9, check.equivalent());
        if (!check.equivalent())
            ++regressions;
    }

    // --- Symbolic checkers at full suite scale -------------------------
    {
        const Circuit ising = isingChain(60);
        for (Topology topology : {Topology::kGrid, Topology::kHeavyHex}) {
            DeviceModel device = deviceForTopology(topology, 60);
            std::vector<int> placement = initialPlacement(ising, device);
            RoutingResult routing =
                routeOnDevice(ising, device, placement).value();
            EquivalenceReport check;
            const long long iters = quick ? 2 : 10;
            double ns = measureNs(iters, [&] {
                check = analyzeRoutedEquivalent(ising, routing,
                                                device.numQubits());
            });
            std::string name =
                "routed_check/ising_n60_" + topologyName(topology);
            auto &r = report.add(name, ns, iters);
            r.extra.emplace_back("equivalent",
                                 check.equivalent() ? 1.0 : 0.0);
            r.extra.emplace_back("physical_qubits",
                                 device.numQubits());
            std::printf("  %-28s %10.2f ms (equivalent=%d, method=%s)\n",
                        name.c_str(), ns * 1e-6, check.equivalent(),
                        equivalenceMethodName(check.method).c_str());
            if (!check.equivalent())
                ++regressions;
        }
    }
    {
        Circuit cliff = testing::randomCliffordCircuit(60, 1200, 7);
        Circuit shuffled = testing::commuteAdjacentPairs(cliff, 8, 128);
        EquivalenceOptions options;
        options.force = EquivalenceMethod::kCliffordTableau;
        EquivalenceReport check;
        const long long iters = quick ? 2 : 10;
        double ns = measureNs(iters, [&] {
            check = analyzeCircuitsEquivalent(cliff, shuffled, options);
        });
        auto &r = report.add("clifford_check/n=60", ns, iters);
        r.extra.emplace_back("equivalent",
                             check.equivalent() ? 1.0 : 0.0);
        r.extra.emplace_back("gates", 1200);
        std::printf("  %-28s %10.2f ms (equivalent=%d)\n",
                    "clifford_check/n=60", ns * 1e-6,
                    check.equivalent());
        if (!check.equivalent())
            ++regressions;
    }
    {
        Circuit diag = testing::randomDiagonalCircuit(60, 1000, 9);
        Circuit shuffled = testing::commuteAdjacentPairs(diag, 10, 128);
        EquivalenceOptions options;
        options.force = EquivalenceMethod::kDiagonalPropagator;
        EquivalenceReport check;
        const long long iters = quick ? 2 : 10;
        double ns = measureNs(iters, [&] {
            check = analyzeCircuitsEquivalent(diag, shuffled, options);
        });
        auto &r = report.add("diagonal_check/n=60", ns, iters);
        r.extra.emplace_back("equivalent",
                             check.equivalent() ? 1.0 : 0.0);
        r.extra.emplace_back("gates", 1000);
        std::printf("  %-28s %10.2f ms (equivalent=%d)\n",
                    "diagonal_check/n=60", ns * 1e-6,
                    check.equivalent());
        if (!check.equivalent())
            ++regressions;
    }

    std::printf("\n");
    if (!report.writeFile(json_path))
        return 1;
    return regressions > 0 ? 1 : 0;
}
