/**
 * @file
 * Regenerates Figure 4: the QAOA-triangle worked example. Prints the
 * gate-based vs aggregated critical-path latencies (paper: 381.9 ns vs
 * 128.3 ns, a 2.97x reduction) and writes the two pulse realizations of
 * the G3 instruction — concatenated per-gate pulses vs one optimized
 * pulse — to CSV files (Figures 4c/4d).
 */
#include <cstdio>
#include <fstream>

#include "bench_common.h"
#include "compiler/pipeline.h"
#include "control/grape.h"
#include "oracle/oracle.h"
#include "util/table.h"
#include "workloads/qaoa.h"

using namespace qaic;

namespace {

/** Concatenates GRAPE pulses for each member gate (gate-based flavour). */
PulseSequence
gateBasedPulses(const DeviceModel &device, const std::vector<Gate> &gates)
{
    GrapeOptimizer grape(device);
    GrapeOptions options;
    options.maxIterations = 600;
    options.restarts = 2;

    PulseSequence out;
    out.dt = options.dt;
    out.amplitudes.assign(device.channels().size(), {});
    AnalyticOracle model;
    for (const Gate &g : gates) {
        Circuit single(device.numQubits());
        single.add(g);
        auto search = grape.minimizeDuration(
            single.unitary(), 2.0, model.latencyNs(g) * 3.0 + 25.0, 1.0,
            options);
        if (!search.found)
            continue;
        for (std::size_t k = 0; k < out.amplitudes.size(); ++k)
            out.amplitudes[k].insert(
                out.amplitudes[k].end(),
                search.best.pulses.amplitudes[k].begin(),
                search.best.pulses.amplitudes[k].end());
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("=== Figure 4: QAOA triangle, gate-based vs aggregated "
                "compilation ===\n\n");

    Circuit circuit = qaoaTriangleExample();
    DeviceModel device = DeviceModel::line(3);
    CompilationContext context(device, {});
    CompilationResult isa = Pipeline::forStrategy(Strategy::kIsa)
                                .compile(circuit, context)
                                .value();
    CompilationResult agg =
        Pipeline::forStrategy(Strategy::kClsAggregation)
            .compile(circuit, context)
            .value();

    Table table({"scheme", "latency (ns)", "instructions"});
    table.addRow({"gate-based (ISA)", Table::fmt(isa.latencyNs, 1),
                  std::to_string(isa.instructionCount)});
    table.addRow({"aggregated", Table::fmt(agg.latencyNs, 1),
                  std::to_string(agg.instructionCount)});
    std::printf("%s\n", table.render().c_str());
    std::printf("latency reduction: %.2fx (paper: 381.9/128.3 = 2.97x)\n\n",
                isa.latencyNs / agg.latencyNs);

    // G3-flavoured pulse comparison: the CNOT-Rz-CNOT block.
    DeviceModel pair = DeviceModel::line(2);
    std::vector<Gate> members = {makeCnot(0, 1), makeRz(1, 5.67),
                                 makeCnot(0, 1)};

    PulseSequence gate_based = gateBasedPulses(pair, members);
    std::ofstream("g3_pulses_gate_based.csv") << gate_based.toCsv(pair);

    Gate block = makeAggregate(members, "G3");
    GrapeOptimizer grape(pair);
    GrapeOptions options;
    options.maxIterations = 700;
    options.restarts = 2;
    auto search =
        grape.minimizeDuration(block.matrix(), 4.0, 40.0, 0.5, options);
    if (search.found) {
        std::ofstream("g3_pulses_optimized.csv")
            << search.best.pulses.toCsv(pair);
        std::printf("G3 pulses: gate-based %.1f ns vs optimized %.1f ns "
                    "(paper Fig. 4c/4d: ~145 ns vs ~42 ns)\n",
                    gate_based.duration(), search.minimalDuration);
        std::printf("CSV written: g3_pulses_gate_based.csv, "
                    "g3_pulses_optimized.csv\n");
    }
    return 0;
}
