/**
 * @file
 * Sustained-throughput benchmark of the compilation service
 * (src/service/), emitting BENCH_service.json.
 *
 * Three phases:
 *
 *  A. Tier-0 cache-miss latency — unique fingerprints through
 *     compileSync on a promotion-free service: p50/p99 wall time per
 *     request. This is the latency a cold client pays.
 *  B. Full-pipeline compile time — the same workloads compiled the
 *     way promotion compiles them (lookahead routing + GRAPE pricing +
 *     optimizing suite) on a cold oracle each time. The tiering bet is
 *     that A is far below B; the acceptance gate requires
 *     B_mean / A_p50 >= 10.
 *  C. Threaded service throughput — client threads hammering a hot
 *     working set while the promoter swaps artifacts underneath:
 *     compiles/sec, p50/p99, promotion count. The gate requires >= 1
 *     observed promotion and, for every tier-1 reply, the never-worse
 *     guard latency_ns <= tier0_latency_ns (the service-level
 *     compileWithLatencyGuard argument).
 *
 * Violating any gate exits nonzero, so CI's service-smoke job fails on
 * a tiering regression, not just a slowdown.
 *
 * Flags:
 *   --quick           smaller counts + cheap GRAPE (CI smoke)
 *   --baseline FILE   compare the deterministic per-workload artifact
 *                     metrics (swaps/instructions/aggregates — these
 *                     never legitimately drift without a compiler
 *                     change) against a committed baseline; mismatch
 *                     exits nonzero. See bench/service_baseline_quick.txt.
 *   --write-baseline FILE
 *                     regenerate the baseline file from this run
 *                     (commit the result after an intentional
 *                     compiler change).
 */
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "compiler/pipeline.h"
#include "device/topology.h"
#include "ir/qasm.h"
#include "service/protocol.h"
#include "service/service.h"

using namespace qaic;
using namespace qaic::bench;
using namespace qaic::service;

namespace {

struct Workload
{
    std::string name;
    std::string qasm;
    Topology topology = Topology::kLine;
};

std::vector<Workload>
workloads()
{
    return {
        {"bell-chain",
         "qubits 4\nh q0\ncnot q0 q1\ncnot q1 q2\ncnot q2 q3\n",
         Topology::kLine},
        {"phase-ladder",
         "qubits 4\nh q0\nh q1\nh q2\nh q3\ncz q0 q1\ncz q1 q2\n"
         "cz q2 q3\nrz(0.7) q3\ncz q0 q3\n",
         Topology::kGrid},
        {"toffoli-sandwich",
         "qubits 5\nh q0\nccx q0 q1 q2\ncnot q2 q3\nccx q2 q3 q4\n"
         "h q4\n",
         Topology::kLine},
        {"rotation-mix",
         "qubits 4\nrx(0.25) q0\nry(0.5) q1\nrz(0.75) q2\n"
         "rzz(1.1) q0 q3\ncnot q1 q2\nrzz(0.3) q2 q3\ncnot q0 q1\n",
         Topology::kGrid},
        {"qft-slice",
         "qubits 4\nh q0\nrzz(1.5707) q0 q1\nh q1\nrzz(0.7853) q1 q2\n"
         "h q2\nrzz(0.3926) q2 q3\nh q3\n",
         Topology::kLine},
        {"ghz-return",
         "qubits 5\nh q0\ncnot q0 q1\ncnot q1 q2\ncnot q2 q3\n"
         "cnot q3 q4\nt q4\ncnot q3 q4\ncnot q2 q3\ncnot q1 q2\n"
         "cnot q0 q1\nh q0\n",
         Topology::kLine},
    };
}

CompileRequest
requestFor(const Workload &workload, const std::string &id)
{
    CompileRequest request;
    request.id = id;
    request.qasm = workload.qasm;
    request.topology = workload.topology;
    request.width = 4;
    return request;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    double rank = p * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/** Deterministic artifact metrics of one workload at tier 0. */
struct ArtifactDigest
{
    std::string name;
    int swaps = 0;
    int instructions = 0;
    int aggregates = 0;
};

int
checkBaseline(const std::string &path,
              const std::vector<ArtifactDigest> &observed)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_service: cannot open baseline %s\n",
                      path.c_str());
        return 1;
    }
    int failures = 0;
    std::size_t checked = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        ArtifactDigest expected;
        if (!(fields >> expected.name >> expected.swaps >>
              expected.instructions >> expected.aggregates)) {
            std::fprintf(stderr,
                         "bench_service: malformed baseline line: %s\n",
                         line.c_str());
            ++failures;
            continue;
        }
        const ArtifactDigest *actual = nullptr;
        for (const ArtifactDigest &digest : observed)
            if (digest.name == expected.name)
                actual = &digest;
        if (!actual) {
            std::fprintf(stderr,
                         "bench_service: baseline workload '%s' missing "
                         "from run\n",
                         expected.name.c_str());
            ++failures;
            continue;
        }
        ++checked;
        if (actual->swaps != expected.swaps ||
            actual->instructions != expected.instructions ||
            actual->aggregates != expected.aggregates) {
            std::fprintf(
                stderr,
                "bench_service: %s drifted from baseline: "
                "swaps %d!=%d or instructions %d!=%d or aggregates "
                "%d!=%d\n",
                expected.name.c_str(), actual->swaps, expected.swaps,
                actual->instructions, expected.instructions,
                actual->aggregates, expected.aggregates);
            ++failures;
        }
    }
    if (checked == 0) {
        std::fprintf(stderr, "bench_service: baseline %s had no entries\n",
                      path.c_str());
        return 1;
    }
    std::printf("baseline   : %zu workloads match %s\n", checked,
                path.c_str());
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string baseline_path, write_baseline_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--write-baseline") == 0 &&
                   i + 1 < argc) {
            write_baseline_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--baseline FILE] "
                         "[--write-baseline FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<Workload> pool = workloads();
    const int misses_per_workload = quick ? 8 : 40;
    const int client_threads = quick ? 4 : 8;
    const int requests_per_thread = quick ? 60 : 400;

    BenchReport report("service");
    int gate_failures = 0;

    // ---- Phase A: tier-0 cache-miss latency --------------------------
    // Unique fingerprints (a distinct rz angle per request) so every
    // request walks the full cold path: parse, device build, tier-0
    // compile, artifact insert.
    std::vector<double> miss_ns;
    std::vector<ArtifactDigest> digests;
    {
        ServiceOptions options;
        options.workers = 1; // latency, not throughput
        options.enablePromotion = false;
        CompileService cold(options);
        int unique = 0;
        for (const Workload &workload : pool) {
            // The baseline digest comes from the *base* workload, so
            // the committed file is valid for quick and full runs.
            ServiceReply base = cold.compileSync(
                requestFor(workload, "base-" + workload.name));
            if (!base.ok) {
                std::fprintf(stderr, "workload %s failed: %s\n",
                              workload.name.c_str(),
                              base.error.message().c_str());
                return 1;
            }
            digests.push_back({workload.name, base.swaps,
                               base.instructions, base.aggregates});
            for (int i = 0; i < misses_per_workload; ++i) {
                Workload variant = workload;
                variant.qasm += "rz(0." + std::to_string(100 + unique++) +
                                ") q0\n";
                CompileRequest request = requestFor(
                    variant, "m" + std::to_string(unique));
                double start = nowNs();
                ServiceReply reply = cold.compileSync(request);
                double elapsed = nowNs() - start;
                if (!reply.ok) {
                    std::fprintf(stderr, "cache-miss compile failed: %s\n",
                                  reply.error.message().c_str());
                    return 1;
                }
                miss_ns.push_back(elapsed);
            }
        }
    }
    double miss_p50 = percentile(miss_ns, 0.50);
    double miss_p99 = percentile(miss_ns, 0.99);
    BenchReport::Record &tier0 = report.add(
        "tier0_cache_miss", miss_p50,
        static_cast<long long>(miss_ns.size()));
    tier0.extra.emplace_back("p50_ns", miss_p50);
    tier0.extra.emplace_back("p99_ns", miss_p99);
    std::printf("tier-0 miss: p50 %.1f us, p99 %.1f us (%zu requests)\n",
                miss_p50 / 1e3, miss_p99 / 1e3, miss_ns.size());

    // ---- Phase B: full-pipeline compile time -------------------------
    // What a promotion costs: lookahead routing, GRAPE pricing, the
    // optimizing suite, cold caches every time.
    double full_total_ns = 0.0;
    long long full_ops = 0;
    {
        CompilerOptions options;
        options.useGrapeOracle = true;
        options.optimize = true;
        options.routing.router = RouterKind::kLookahead;
        options.maxInstructionWidth = 4;
        if (quick) {
            options.grapeOptions.grape.maxIterations = 60;
            options.grapeOptions.grape.restarts = 1;
        }
        for (const Workload &workload : pool) {
            StatusOr<Circuit> circuit = parseQasm(workload.qasm);
            if (!circuit.isOk()) {
                std::fprintf(stderr, "workload %s: %s\n",
                              workload.name.c_str(),
                              circuit.status().toString().c_str());
                return 1;
            }
            StatusOr<DeviceModel> device = deviceFromUserConfig(
                topologyName(workload.topology),
                circuit.value().numQubits(), options.seed);
            if (!device.isOk())
                return 1;
            double start = nowNs();
            // Fresh context => fresh CachingOracle: cache-miss cost.
            CompilationContext context(device.value(), options);
            Pipeline optimized = Pipeline::forStrategy(
                Strategy::kClsAggregation, false, true);
            Pipeline plain =
                Pipeline::forStrategy(Strategy::kClsAggregation);
            StatusOr<CompilationResult> compiled = compileWithLatencyGuard(
                optimized, plain, circuit.value(), context);
            double elapsed = nowNs() - start;
            if (!compiled.isOk()) {
                std::fprintf(stderr, "full pipeline %s: %s\n",
                              workload.name.c_str(),
                              compiled.status().toString().c_str());
                return 1;
            }
            full_total_ns += elapsed;
            ++full_ops;
        }
    }
    double full_mean = full_total_ns / static_cast<double>(full_ops);
    report.add("full_pipeline_cold", full_mean, full_ops);
    double ratio = full_mean / miss_p50;
    std::printf("full pipe  : mean %.1f ms per compile; tier-0 p50 is "
                "%.0fx cheaper\n",
                full_mean / 1e6, ratio);
    BenchReport::Record &tiering =
        report.add("tiering_ratio", miss_p50, full_ops, full_mean);
    tiering.extra.emplace_back("ratio", ratio);
    if (ratio < 10.0) {
        std::fprintf(stderr,
                     "GATE FAILED: tier-0 p50 must be >= 10x below the "
                     "full pipeline (got %.1fx)\n",
                     ratio);
        ++gate_failures;
    }

    // ---- Phase C: threaded throughput with promotions ----------------
    std::vector<double> hot_ns;
    std::mutex hot_mutex;
    std::atomic<int> errors{0};
    std::atomic<int> guard_violations{0};
    double span_ns = 0.0;
    std::uint64_t promotions = 0;
    {
        ServiceOptions options;
        options.workers = 4;
        options.queueCapacity = 4096;
        options.promoteAfter = 3;
        options.tier1Grape = false; // promotion cost is phase B's story
        options.tier1Optimize = true;
        CompileService service(options);

        double span_start = nowNs();
        std::vector<std::thread> clients;
        clients.reserve(static_cast<std::size_t>(client_threads));
        for (int t = 0; t < client_threads; ++t) {
            clients.emplace_back([&, t] {
                std::vector<double> local;
                local.reserve(
                    static_cast<std::size_t>(requests_per_thread));
                for (int i = 0; i < requests_per_thread; ++i) {
                    const Workload &workload =
                        pool[static_cast<std::size_t>(t * 11 + i) %
                             pool.size()];
                    double start = nowNs();
                    ServiceReply reply = service.compileSync(requestFor(
                        workload, "h" + std::to_string(t) + "-" +
                                      std::to_string(i)));
                    local.push_back(nowNs() - start);
                    if (!reply.ok) {
                        ++errors;
                        continue;
                    }
                    // Never-worse guard, checked on every reply: a
                    // tier-1 answer must not be slower than the tier-0
                    // answer it replaced.
                    if (reply.tier >= 1 &&
                        reply.latencyNs > reply.tier0LatencyNs + 1e-9)
                        ++guard_violations;
                }
                std::lock_guard<std::mutex> lock(hot_mutex);
                hot_ns.insert(hot_ns.end(), local.begin(), local.end());
            });
        }
        for (std::thread &client : clients)
            client.join();
        span_ns = nowNs() - span_start;
        service.waitForPromotionsIdle();
        promotions = service.stats().promotions;
    }
    double hot_p50 = percentile(hot_ns, 0.50);
    double hot_p99 = percentile(hot_ns, 0.99);
    double compiles_per_sec =
        static_cast<double>(hot_ns.size()) / (span_ns / 1e9);
    BenchReport::Record &throughput = report.add(
        "service_throughput", hot_p50,
        static_cast<long long>(hot_ns.size()));
    throughput.extra.emplace_back("compiles_per_sec", compiles_per_sec);
    throughput.extra.emplace_back("p50_ns", hot_p50);
    throughput.extra.emplace_back("p99_ns", hot_p99);
    throughput.extra.emplace_back("promotions",
                                  static_cast<double>(promotions));
    std::printf("throughput : %.0f compiles/sec, p50 %.1f us, p99 %.1f "
                "us, %llu promotions\n",
                compiles_per_sec, hot_p50 / 1e3, hot_p99 / 1e3,
                static_cast<unsigned long long>(promotions));
    if (errors.load() > 0) {
        std::fprintf(stderr, "GATE FAILED: %d hot-path compile errors\n",
                      errors.load());
        ++gate_failures;
    }
    if (promotions < 1) {
        std::fprintf(stderr,
                     "GATE FAILED: no tier promotion observed\n");
        ++gate_failures;
    }
    if (guard_violations.load() > 0) {
        std::fprintf(stderr,
                     "GATE FAILED: %d tier-1 replies were worse than "
                     "their tier-0 answer\n",
                     guard_violations.load());
        ++gate_failures;
    }

    if (!write_baseline_path.empty()) {
        std::ofstream out(write_baseline_path);
        out << "# bench_service artifact baseline: workload swaps "
               "instructions aggregates\n";
        for (const ArtifactDigest &digest : digests)
            out << digest.name << ' ' << digest.swaps << ' '
                << digest.instructions << ' ' << digest.aggregates
                << '\n';
        std::printf("wrote %s (%zu workloads)\n",
                    write_baseline_path.c_str(), digests.size());
    }
    if (!baseline_path.empty())
        gate_failures += checkBaseline(baseline_path, digests);

    if (!report.writeFile())
        return 1;
    return gate_failures ? 1 : 0;
}
