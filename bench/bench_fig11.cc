/**
 * @file
 * Regenerates Figure 11: spatial locality vs aggregation benefit. Three
 * QAOA instances (line / random-4-regular / cluster graphs, i.e. high /
 * medium / low spatial locality) are compiled with CLS and with
 * CLS+Aggregation; the figure reports the aggregated latency normalized
 * to the post-CLS latency.
 *
 * All three instances use 30 qubits so the comparison isolates locality
 * (the paper's Table 3 sizes would confound it — its line instance has
 * 20 qubits; see EXPERIMENTS.md).
 *
 * Expected shape: the lower the spatial locality (the more SWAPs the
 * mapper inserts), the lower the normalized latency — aggregation helps
 * most where the communication overhead is largest.
 */
#include <cstdio>

#include "bench_common.h"
#include "compiler/batch.h"
#include "util/table.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"

using namespace qaic;

int
main()
{
    std::printf("=== Figure 11: spatial locality vs aggregated latency "
                "(CLS = 1.00 baseline; all instances 30 qubits) ===\n\n");

    struct Row
    {
        const char *name;
        const char *locality;
        Graph graph;
    };
    const Row rows[] = {
        {"MAXCUT-line", "High", lineGraph(30)},
        {"MAXCUT-reg4", "Medium", randomRegularGraph(30, 4, 11)},
        {"MAXCUT-cluster", "Low", clusterGraph(6, 5, 12)}};

    // Both strategies for all three instances as one thread-pooled
    // batch over a shared latency cache.
    std::vector<BatchJob> jobs;
    for (const Row &row : rows) {
        Circuit circuit = qaoaMaxcut(row.graph);
        DeviceModel device = DeviceModel::gridFor(circuit.numQubits());
        jobs.push_back({circuit, device, Strategy::kCls});
        jobs.push_back({std::move(circuit), device,
                        Strategy::kClsAggregation});
    }
    // Pinned to the paper's greedy router so the reproduced figure keeps
    // the paper's Section 3.4.1 routing methodology.
    CompilerOptions options;
    options.routing.router = RouterKind::kBaseline;
    std::vector<CompilationResult> results =
        unwrapBatch(compileBatch(jobs, options));

    Table table({"instance", "locality", "SWAPs", "CLS (ns)",
                 "CLS+Agg (ns)", "normalized"});
    for (std::size_t i = 0; i < std::size(rows); ++i) {
        const CompilationResult &cls = results[2 * i];
        const CompilationResult &agg = results[2 * i + 1];
        table.addRow({rows[i].name, rows[i].locality,
                      std::to_string(agg.swapCount),
                      Table::fmt(cls.latencyNs, 0),
                      Table::fmt(agg.latencyNs, 0),
                      Table::fmt(agg.latencyNs / cls.latencyNs, 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(paper: normalized latency decreases from line to "
                "cluster — lower locality, larger aggregation win)\n");
    return 0;
}
