/**
 * @file
 * Optimizer harness: two-qubit gate count, total gate count and routed
 * latency for every paper workload x strategy x topology cell, compiled
 * with and without the optimizing pass suite (--opt).
 *
 * Emits BENCH_opt.json (one record per cell holding both compiles'
 * numbers plus the equivalence verdict of the optimized artifact) and
 * fails — nonzero exit, for CI — when any guard trips:
 *
 *  - never-worse: an optimized cell's routed latency exceeds the
 *    unoptimized compile of the same cell,
 *  - progress: the optimizer does not strictly reduce the suite-total
 *    two-qubit gate count,
 *  - soundness: the equivalence engine refutes any optimized compile
 *    (rewrite verification is forced on here even in Release, so a
 *    miscompile also panics inside the pipeline long before this),
 *  - regression (with --baseline): an optimized cell's two-qubit count
 *    exceeds the committed baseline for that cell.
 *
 * Usage: bench_opt [--quick] [--json FILE] [--baseline FILE]
 *   --quick       scale the suite registers down (CI smoke budget)
 *   --json F      write the report to F instead of BENCH_opt.json
 *   --baseline F  compare per-cell two-qubit counts against F; lines
 *                 of "cell-name count" (see bench/opt_baseline_quick.txt)
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "compiler/compiler.h"
#include "compiler/decompose.h"
#include "device/topology.h"
#include "ir/gate.h"
#include "verify/verify.h"
#include "workloads/suite.h"

using namespace qaic;

namespace {

/** Two-qubit gates in @p gates, descending into aggregate members. */
int
twoQubitCount(const std::vector<Gate> &gates)
{
    int count = 0;
    for (const Gate &g : gates) {
        if (g.kind == GateKind::kAggregate && g.payload)
            count += twoQubitCount(g.payload->members);
        else if (g.width() >= 2)
            ++count;
    }
    return count;
}

/** Primitive gates in @p gates, descending into aggregate members. */
int
primitiveCount(const std::vector<Gate> &gates)
{
    int count = 0;
    for (const Gate &g : gates) {
        if (g.kind == GateKind::kAggregate && g.payload)
            count += primitiveCount(g.payload->members);
        else
            ++count;
    }
    return count;
}

struct CellNumbers
{
    int cnots = 0;
    int gates = 0;
    double latencyNs = 0.0;
    double wallNs = 0.0;
};

CellNumbers
numbersOf(const CompilationResult &result, double wall_ns)
{
    CellNumbers out;
    out.cnots = twoQubitCount(result.physicalCircuit.gates());
    out.gates = primitiveCount(result.physicalCircuit.gates());
    out.latencyNs = result.latencyNs;
    out.wallNs = wall_ns;
    return out;
}

std::map<std::string, int>
readBaseline(const std::string &path)
{
    std::map<std::string, int> baseline;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        std::exit(2);
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream row(line);
        std::string name;
        int count = 0;
        if (row >> name >> count)
            baseline[name] = count;
    }
    return baseline;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    std::string baseline_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--quick] [--json FILE] [--baseline FILE]\n",
                argv[0]);
            return 2;
        }
    }

    const double scale = quick ? 0.3 : 1.0;
    const Topology topologies[] = {Topology::kGrid, Topology::kHeavyHex};
    std::map<std::string, int> baseline;
    if (!baseline_path.empty())
        baseline = readBaseline(baseline_path);

    bench::BenchReport report("opt");
    long long base_total_cnots = 0;
    long long opt_total_cnots = 0;
    int latency_regressions = 0;
    int refuted = 0;
    int baseline_regressions = 0;

    std::printf("%-16s %-12s %-10s %9s %9s %12s %12s %6s\n", "workload",
                "strategy", "topology", "base 2q", "opt 2q", "base ns",
                "opt ns", "verif");
    for (const BenchmarkSpec &spec : paperBenchmarkSuite(scale)) {
        Circuit lowered = decomposeCcx(spec.circuit);
        for (Topology topology : topologies) {
            DeviceModel device =
                deviceForTopology(topology, lowered.numQubits());

            for (Strategy strategy : kAllStrategies) {
                // Fresh compilers per cell: GRAPE pricing is history-
                // sensitive (warm starts from the pulse cache), so a
                // cold oracle on both sides is what makes "same cell,
                // with and without --opt" a deterministic comparison —
                // and exactly what compileWithLatencyGuard's internal
                // baseline reproduces.
                CompilerOptions base_options;
                Compiler base_compiler(device, base_options);

                CompilerOptions opt_options;
                opt_options.optimize = true;
                // Force rewrite verification even in Release: this
                // harness is the soundness record the CI artifact
                // keeps.
                opt_options.optimizer.verifyRewrites = true;
                Compiler opt_compiler(device, opt_options);

                double t0 = bench::nowNs();
                CompilationResult base =
                    base_compiler.compile(lowered, strategy);
                double t1 = bench::nowNs();
                CompilationResult opt =
                    opt_compiler.compile(lowered, strategy);
                double t2 = bench::nowNs();

                CellNumbers b = numbersOf(base, t1 - t0);
                CellNumbers o = numbersOf(opt, t2 - t1);
                base_total_cnots += b.cnots;
                opt_total_cnots += o.cnots;

                // The optimized artifact must still implement the
                // original logical circuit through placement and
                // routing. kInconclusive (no engine tier applies) is
                // recorded but only a refutation fails the run.
                EquivalenceReport proof = analyzeRoutedEquivalent(
                    lowered, opt.routing, device.numQubits());
                double verdict = 0.0;
                if (proof.verdict == EquivalenceVerdict::kEquivalent)
                    verdict = 1.0;
                if (proof.verdict == EquivalenceVerdict::kNotEquivalent) {
                    verdict = -1.0;
                    ++refuted;
                    std::fprintf(stderr,
                                 "MISCOMPILE: %s/%s/%s refuted: %s\n",
                                 spec.name.c_str(),
                                 strategyName(strategy).c_str(),
                                 topologyName(topology).c_str(),
                                 proof.note.c_str());
                }

                std::string cell = spec.name + "/" +
                                   strategyName(strategy) + "/" +
                                   topologyName(topology);
                std::printf("%-16s %-12s %-10s %9d %9d %12.1f %12.1f "
                            "%6s\n",
                            spec.name.c_str(),
                            strategyName(strategy).c_str(),
                            topologyName(topology).c_str(), b.cnots,
                            o.cnots, b.latencyNs, o.latencyNs,
                            verdict > 0.0 ? "ok"
                                          : (verdict < 0.0 ? "FAIL"
                                                           : "inconcl"));

                auto &record = report.add(cell, o.wallNs, 1, b.wallNs);
                record.extra.emplace_back("base_cnots", b.cnots);
                record.extra.emplace_back("opt_cnots", o.cnots);
                record.extra.emplace_back("base_gates", b.gates);
                record.extra.emplace_back("opt_gates", o.gates);
                record.extra.emplace_back("base_latency_ns", b.latencyNs);
                record.extra.emplace_back("opt_latency_ns", o.latencyNs);
                record.extra.emplace_back("verified", verdict);

                if (o.latencyNs > b.latencyNs + 1e-6) {
                    std::fprintf(stderr,
                                 "REGRESSION: --opt latency %.1f ns vs "
                                 "%.1f ns on %s\n",
                                 o.latencyNs, b.latencyNs, cell.c_str());
                    ++latency_regressions;
                }
                auto it = baseline.find(cell);
                if (it != baseline.end() && o.cnots > it->second) {
                    std::fprintf(stderr,
                                 "REGRESSION: %d two-qubit gates vs "
                                 "committed baseline %d on %s\n",
                                 o.cnots, it->second, cell.c_str());
                    ++baseline_regressions;
                }
            }
        }
    }

    std::printf("\nsuite total two-qubit gates: %lld -> %lld with --opt\n",
                base_total_cnots, opt_total_cnots);
    if (!report.writeFile(json_path))
        return 1;
    if (opt_total_cnots >= base_total_cnots) {
        std::fprintf(stderr, "REGRESSION: --opt did not strictly reduce "
                             "the suite-total two-qubit gate count\n");
        return 1;
    }
    if (latency_regressions > 0 || refuted > 0 ||
        baseline_regressions > 0)
        return 1;
    return 0;
}
