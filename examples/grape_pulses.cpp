/**
 * @file
 * Quantum optimal control demo: synthesize minimal-duration pulses for an
 * iSWAP and a CNOT on a coupled transmon pair with GRAPE, print the
 * convergence trace (Figure 3 flavour), verify the integrated unitary,
 * and dump the pulse shapes as CSV (Figure 4c/4d flavour).
 */
#include <cstdio>
#include <fstream>

#include "control/grape.h"
#include "control/pulse.h"
#include "ir/gate.h"
#include "la/cmatrix.h"

using namespace qaic;

namespace {

void
synthesize(const char *name, const CMatrix &target, const char *csv_path)
{
    DeviceModel device = DeviceModel::line(2);
    GrapeOptimizer grape(device);

    GrapeOptions options;
    options.maxIterations = 600;
    options.restarts = 2;
    options.targetFidelity = 0.999;

    auto search = grape.minimizeDuration(target, 4.0, 60.0, 0.5, options);
    if (!search.found) {
        std::printf("%s: no converging duration found\n", name);
        return;
    }
    std::printf("%s: minimal duration %.1f ns (%zu probes)\n", name,
                search.minimalDuration, search.probes.size());
    std::printf("  duration search:");
    for (const auto &probe : search.probes)
        std::printf(" %.1f->%s", probe.duration,
                    probe.converged ? "ok" : "fail");
    std::printf("\n  convergence (fidelity every 50 iters):");
    for (std::size_t i = 0; i < search.best.trace.size(); i += 50)
        std::printf(" %.4f", search.best.trace[i]);
    std::printf(" -> %.5f\n", search.best.fidelity);

    CMatrix u = pulseUnitary(device, search.best.pulses);
    std::printf("  integrated-pulse process fidelity: %.6f\n",
                processFidelity(u, target));

    std::ofstream csv(csv_path);
    csv << search.best.pulses.toCsv(device);
    std::printf("  pulse shapes written to %s\n", csv_path);
}

} // namespace

int
main()
{
    std::printf("GRAPE pulse synthesis on an XY-coupled transmon pair\n");
    std::printf("(mu1 = 0.1 GHz, mu2 = 0.02 GHz; Weyl-chamber bounds: "
                "iSWAP 12.5 ns, CNOT 12.5 ns)\n\n");
    synthesize("iSWAP", makeIswap(0, 1).matrix(), "iswap_pulses.csv");
    synthesize("CNOT", makeCnot(0, 1).matrix(), "cnot_pulses.csv");
    return 0;
}
