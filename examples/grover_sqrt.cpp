/**
 * @file
 * The "square root" benchmark end to end: build a Grover search for
 * x with x^2 = 4 (mod 8), check that the algorithm actually finds the
 * roots by state-vector simulation, then compare compilation strategies —
 * the highly-serial regime where the paper reports the largest gains
 * from wide aggregated instructions.
 */
#include <cmath>
#include <cstdio>

#include "compiler/compiler.h"
#include "util/table.h"
#include "verify/verify.h"
#include "workloads/grover.h"

using namespace qaic;

int
main()
{
    const int n = 3, target = 4;
    Circuit circuit = groverSquareRoot(n, target, 1);
    GroverSqrtLayout layout = groverSqrtLayout(n);
    std::printf("Grover square root: find x with x^2 = %d (mod %d)\n",
                target, 1 << n);
    std::printf("circuit: %d qubits, %zu gates, depth %d\n\n",
                circuit.numQubits(), circuit.size(), circuit.depth());

    // Functional check: measure the x register distribution.
    StateVector sv(layout.total);
    sv.apply(circuit);
    std::printf("P(x) after one Grover iteration:\n");
    std::vector<double> mass(1 << n, 0.0);
    for (std::size_t idx = 0; idx < sv.amplitudes().size(); ++idx) {
        double p = std::norm(sv.amplitudes()[idx]);
        if (p < 1e-12)
            continue;
        int x = 0;
        for (int i = 0; i < n; ++i)
            if (idx >> (layout.total - 1 - i) & 1)
                x |= 1 << i;
        mass[x] += p;
    }
    for (int x = 0; x < (1 << n); ++x)
        std::printf("  x=%d  P=%.4f %s\n", x, mass[x],
                    ((x * x) & ((1 << n) - 1)) == target ? "<- root" : "");

    // Compilation comparison on a grid device.
    Compiler compiler(DeviceModel::gridFor(circuit.numQubits()));
    Table table({"strategy", "latency (ns)", "vs ISA", "instructions",
                 "max width"});
    double isa = 0.0;
    for (Strategy s : {Strategy::kIsa, Strategy::kCls,
                       Strategy::kClsHandOpt, Strategy::kAggregation,
                       Strategy::kClsAggregation}) {
        CompilationResult r = compiler.compile(circuit, s);
        if (s == Strategy::kIsa)
            isa = r.latencyNs;
        table.addRow({strategyName(s), Table::fmt(r.latencyNs, 0),
                      Table::fmt(isa / r.latencyNs, 2) + "x",
                      std::to_string(r.instructionCount),
                      std::to_string(r.maxWidth)});
    }
    std::printf("\n%s", table.render().c_str());
    return 0;
}
