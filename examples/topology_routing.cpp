/**
 * @file
 * Topology library + lookahead router tour: routes one QAOA workload
 * across every factory topology with both SWAP routers and shows how
 * the lookahead front-layer heuristic cuts SWAP counts — and therefore
 * aggregate latency — on everything that is not a line.
 *
 * The same sweep is available from the command line:
 *
 *   qaicc --topology heavy-hex --router lookahead circuit.qasm
 *   qaicc --topology heavy-hex --router baseline  circuit.qasm
 *
 * (--topology picks the smallest device of that family covering the
 * circuit; --router selects the SWAP-insertion heuristic.)
 */
#include <cstdio>

#include "compiler/compiler.h"
#include "device/topology.h"
#include "mapping/mapping.h"
#include "oracle/oracle.h"
#include "schedule/schedule.h"
#include "util/table.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"

using namespace qaic;

int
main()
{
    // A low-locality workload: MAXCUT on a random 4-regular graph, the
    // kind of interaction structure that punishes greedy routing.
    Circuit circuit = qaoaMaxcut(randomRegularGraph(14, 4, 3));
    std::printf("QAOA MAXCUT, %d qubits, %zu gates\n\n",
                circuit.numQubits(), circuit.size());

    AnalyticOracle oracle;
    Table table({"topology", "device", "router", "SWAPs", "latency (ns)"});
    for (Topology topology : kAllTopologies) {
        DeviceModel device =
            deviceForTopology(topology, circuit.numQubits());
        std::vector<int> placement = initialPlacement(circuit, device);
        for (RouterKind router :
             {RouterKind::kBaseline, RouterKind::kLookahead}) {
            RoutingOptions options;
            options.router = router;
            RoutingResult routing =
                routeOnDevice(circuit, device, placement, options)
                    .value();
            double latency =
                scheduleAsap(routing.physical, oracle).makespan();
            table.addRow({topologyName(topology),
                          std::to_string(device.numQubits()) + "q",
                          routerName(router),
                          std::to_string(routing.swapCount),
                          Table::fmt(latency, 1)});
        }
    }
    std::printf("%s\n", table.render().c_str());

    // The router also threads through the full compiler: a heavy-hex
    // compile with aggregation, lookahead-routed by default.
    DeviceModel hex = deviceForTopology(Topology::kHeavyHex,
                                        circuit.numQubits());
    Compiler compiler(hex);
    CompilationResult result =
        compiler.compile(circuit, Strategy::kClsAggregation);
    std::printf("cls-agg on heavy-hex: %d SWAPs, %.1f ns, "
                "%d instructions (%d aggregated)\n",
                result.swapCount, result.latencyNs,
                result.instructionCount, result.aggregateCount);
    return 0;
}
