/**
 * @file
 * Quickstart: parse a small program in the textual assembly format,
 * compile it with the paper's full pipeline (CLS + instruction
 * aggregation), and inspect the resulting pulse schedule.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "compiler/compiler.h"
#include "compiler/pipeline.h"
#include "ir/qasm.h"
#include "util/table.h"
#include "verify/verify.h"

using namespace qaic;

int
main()
{
    const char *program = R"(
# A 4-qubit toy kernel: entangle, rotate, disentangle.
qubits 4
h q0
h q2
cnot q0 q1
rz(5.67) q1
cnot q0 q1
cnot q2 q3
rz(5.67) q3
cnot q2 q3
cnot q1 q2
rx(1.26) q0
rx(1.26) q3
)";

    StatusOr<Circuit> circuit = parseQasm(program);
    if (!circuit.isOk()) {
        std::fprintf(stderr, "parse error: %s\n",
                     circuit.status().toString().c_str());
        return 1;
    }
    std::printf("Input program (%zu gates, %d qubits):\n%s\n",
                circuit->size(), circuit->numQubits(),
                toQasm(*circuit).c_str());

    // A 2x2 superconducting grid with the paper's control limits.
    DeviceModel device = DeviceModel::gridFor(circuit->numQubits());
    Compiler compiler(device);

    Table table({"strategy", "latency (ns)", "instructions", "aggregates",
                 "SWAPs"});
    CompilationResult best;
    for (Strategy s : {Strategy::kIsa, Strategy::kCls,
                       Strategy::kClsHandOpt, Strategy::kClsAggregation}) {
        CompilationResult r = compiler.compile(*circuit, s);
        table.addRow({strategyName(s), Table::fmt(r.latencyNs, 1),
                      std::to_string(r.instructionCount),
                      std::to_string(r.aggregateCount),
                      std::to_string(r.swapCount)});
        if (s == Strategy::kClsAggregation)
            best = std::move(r);
    }
    std::printf("%s\n", table.render().c_str());

    // Every result carries per-pass wall-clock metrics from the pass
    // pipeline underneath (see examples/custom_pipeline.cpp for using
    // the Pipeline API directly).
    std::printf("CLS+Aggregation passes:\n");
    for (const PassMetrics &m : best.passMetrics)
        std::printf("  %-22s %8.2f ms\n", m.pass.c_str(), m.wallMs);
    std::printf("\n");

    std::printf("Final instruction stream (CLS+Aggregation):\n");
    for (const ScheduledOp &op : best.schedule.ops)
        std::printf("  t=%7.1f ns  %-40s (%.1f ns)\n", op.start,
                    op.gate.toString().c_str(), op.duration);

    // The compiled stream must be unitarily equivalent to the routed one.
    bool ok = circuitsEquivalent(best.routing.physical,
                                 best.physicalCircuit, 1e-6, 6);
    std::printf("\nbackend semantics check: %s\n", ok ? "OK" : "FAIL");

    // Pulse-level spot check (paper Section 3.6).
    PulseVerification pv = verifyPulses(best.physicalCircuit, 3, 2, 2.2);
    std::printf("pulse verification: %d/%d instructions passed "
                "(worst fidelity %.4f)\n",
                pv.passed, pv.checked, pv.worstFidelity);
    return ok && pv.passed == pv.checked ? 0 : 1;
}
