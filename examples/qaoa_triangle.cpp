/**
 * @file
 * The paper's Section 3.1 worked example, reproduced stage by stage:
 * QAOA MAXCUT on a triangle (gamma = 5.67, beta = 1.26) on a 1-D
 * superconducting line. Prints the frontend's commutativity detection,
 * the commutation-group structure (Figure 6), the routed circuit, the
 * final aggregated instructions with their pulse times (Table 1 flavour),
 * and the latency comparison (Figure 4).
 */
#include <cstdio>

#include "aggregate/aggregate.h"
#include "compiler/compiler.h"
#include "gdg/gdg.h"
#include "oracle/oracle.h"
#include "util/table.h"
#include "workloads/qaoa.h"

using namespace qaic;

int
main()
{
    Circuit circuit = qaoaTriangleExample();
    std::printf("QAOA MAXCUT on a triangle (gamma=5.67, beta=1.26):\n%s\n",
                circuit.toString().c_str());

    // Stage 1 — commutativity detection (Fig. 6a -> 6b).
    int blocks = 0;
    Circuit detected = detectDiagonalBlocks(circuit, 10, &blocks);
    std::printf("frontend detected %d diagonal CNOT-Rz-CNOT blocks\n",
                blocks);

    // Commutation groups per qubit (the GDG structure).
    CommutationChecker checker;
    Gdg gdg(detected, &checker);
    for (int q = 0; q < detected.numQubits(); ++q) {
        std::printf("qubit q%d groups:", q);
        for (const auto &group : gdg.groupsOnQubit(q)) {
            std::printf(" {");
            for (std::size_t i = 0; i < group.size(); ++i)
                std::printf("%s%s", i ? "," : "",
                            gdg.gate(group[i]).name().c_str());
            std::printf("}");
        }
        std::printf("\n");
    }

    // Stage 2 — full pipelines on the line device.
    Compiler compiler(DeviceModel::line(3));
    CompilationResult isa = compiler.compile(circuit, Strategy::kIsa);
    CompilationResult agg =
        compiler.compile(circuit, Strategy::kClsAggregation);

    std::printf("\nmapping inserted %d SWAP(s) (Fig. 6c)\n", agg.swapCount);

    // Table 1 flavour: per-instruction pulse times of the final stream.
    AnalyticOracle oracle;
    Table table({"instruction", "qubits", "pulse time (ns)"});
    for (const Gate &g : agg.physicalCircuit.gates()) {
        std::string qubits;
        for (int q : g.qubits)
            qubits += "q" + std::to_string(q) + " ";
        table.addRow({g.name(), qubits,
                      Table::fmt(oracle.latencyNs(g), 1)});
    }
    std::printf("\n%s\n", table.render().c_str());

    std::printf("gate-based latency   : %7.1f ns\n", isa.latencyNs);
    std::printf("aggregated latency   : %7.1f ns\n", agg.latencyNs);
    std::printf("speedup              : %7.2fx  (paper's example: 2.97x)\n",
                isa.latencyNs / agg.latencyNs);
    return 0;
}
