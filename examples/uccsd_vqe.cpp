/**
 * @file
 * VQE workload: generate the UCCSD singles+doubles ansatz for a 4
 * spin-orbital molecule (Jordan-Wigner encoding), compile it under every
 * strategy, and sample-verify the generated pulses — the case where the
 * paper argues aggregated compilation makes physics-derived ansatzes
 * competitive with hardware-efficient ones (Section 5.2/6.4).
 */
#include <cstdio>

#include "compiler/compiler.h"
#include "util/table.h"
#include "verify/verify.h"
#include "workloads/uccsd.h"

using namespace qaic;

int
main()
{
    Circuit ansatz = uccsdAnsatz(4);
    std::printf("UCCSD-n4 ansatz: %zu gates on %d qubits, depth %d\n",
                ansatz.size(), ansatz.numQubits(), ansatz.depth());
    auto counts = ansatz.gateCounts();
    std::printf("gate mix:");
    for (const auto &[name, count] : counts)
        std::printf(" %s:%d", name.c_str(), count);
    std::printf("\n\n");

    Compiler compiler(DeviceModel::gridFor(4));
    Table table({"strategy", "latency (ns)", "vs ISA", "aggregates"});
    double isa = 0.0;
    CompilationResult best;
    for (Strategy s : {Strategy::kIsa, Strategy::kCls,
                       Strategy::kClsHandOpt, Strategy::kAggregation,
                       Strategy::kClsAggregation}) {
        CompilationResult r = compiler.compile(ansatz, s);
        if (s == Strategy::kIsa)
            isa = r.latencyNs;
        table.addRow({strategyName(s), Table::fmt(r.latencyNs, 0),
                      Table::fmt(isa / r.latencyNs, 2) + "x",
                      std::to_string(r.aggregateCount)});
        if (s == Strategy::kClsAggregation)
            best = std::move(r);
    }
    std::printf("%s\n", table.render().c_str());

    // Sample-verify pulses of the final instruction stream (paper 3.6).
    GrapeOptions grape;
    grape.maxIterations = 800;
    grape.restarts = 2;
    grape.targetFidelity = 0.99;
    PulseVerification pv =
        verifyPulses(best.physicalCircuit, 5, 2, 2.2, grape);
    std::printf("pulse verification: %d/%d sampled instructions passed "
                "(worst fidelity %.4f)\n",
                pv.passed, pv.checked, pv.worstFidelity);
    return 0;
}
