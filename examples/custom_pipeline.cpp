/**
 * @file
 * Composing a custom compilation pipeline and batch-compiling a
 * workload suite.
 *
 * Three things the pass-pipeline API enables that the Compiler facade
 * hides:
 *
 *  1. Custom pass lists — here an aggregation pipeline *without* the
 *     CLS frontend but *with* CLS scheduling of the physical stream, a
 *     configuration no Strategy value names.
 *  2. A user-defined Pass (a circuit-statistics probe) inserted between
 *     canonical passes, with its wall-clock accounted like any other.
 *  3. compileBatch: a whole workload suite fanned out over a thread
 *     pool, every compilation sharing one latency-oracle cache.
 *
 * Build & run:  ./build/example_custom_pipeline
 */
#include <cstdio>
#include <memory>

#include "compiler/batch.h"
#include "compiler/pipeline.h"
#include "util/table.h"
#include "workloads/graphs.h"
#include "workloads/qaoa.h"
#include "workloads/uccsd.h"

using namespace qaic;

namespace {

/** A probe pass: records the working circuit's shape, changes nothing. */
class StatsProbePass : public Pass
{
  public:
    std::string name() const override { return "stats-probe"; }

    Status
    run(CompilationContext &context) override
    {
        std::printf("  [probe] %zu instructions on %d qubits, %d SWAPs "
                    "so far\n",
                    context.working.size(), context.working.numQubits(),
                    context.routing.swapCount);
        return Status();
    }
};

} // namespace

int
main()
{
    Circuit circuit = qaoaMaxcut(lineGraph(8));
    DeviceModel device = DeviceModel::gridFor(circuit.numQubits());

    // 1 + 2: custom pass list with a probe in the middle.
    std::printf("Custom pipeline (aggregation without CLS frontend):\n");
    Pipeline custom;
    custom.emplace<FrontendLoweringPass>();
    custom.emplace<MappingPass>();
    custom.emplace<StatsProbePass>();
    custom.emplace<AggregationBackendPass>();
    custom.emplace<ClsSchedulePass>();
    custom.label(Strategy::kAggregation); // Nearest named configuration.

    CompilationContext context(device, {});
    CompilationResult r = custom.compile(circuit, context).value();
    std::printf("  latency %.1f ns, %d instructions (%d aggregated)\n\n",
                r.latencyNs, r.instructionCount, r.aggregateCount);

    std::printf("Per-pass wall clock:\n");
    for (const PassMetrics &m : r.passMetrics)
        std::printf("  %-22s %8.2f ms\n", m.pass.c_str(), m.wallMs);

    // 3: batch front door — the paper's caching amortization across a
    // suite, on a thread pool.
    std::printf("\nBatch compilation (4 threads, shared cache):\n");
    std::vector<BatchJob> jobs;
    for (int n : {4, 6, 8})
        jobs.push_back({qaoaMaxcut(lineGraph(n)), DeviceModel::gridFor(n),
                        Strategy::kClsAggregation});
    jobs.push_back({uccsdAnsatz(4), DeviceModel::gridFor(4),
                    Strategy::kClsAggregation});

    std::vector<CompilationResult> results = unwrapBatch(
        compileBatch(jobs, CompilerOptions{}, /*threads=*/4));

    Table table({"job", "strategy", "latency (ns)", "instructions"});
    for (std::size_t i = 0; i < results.size(); ++i)
        table.addRow({std::to_string(i),
                      strategyName(results[i].strategy),
                      Table::fmt(results[i].latencyNs, 1),
                      std::to_string(results[i].instructionCount)});
    std::printf("%s\n", table.render().c_str());
    return 0;
}
